// Fig. 8 — Impact of reuse bounds: GFLOPS across the thirteen measured
// bound triples for the paper's three cases:
//   Case (1) vector size 64, repeated rate 50 %
//   Case (2) vector size 16, repeated rate 25 %
//   Case (3) vector size 32, repeated rate 75 %
// Tensor size 384, both distributions. Also reports the collapsed-bound
// ablation (one shared slack value instead of three per-tier bounds).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/tuner.hpp"

namespace micco::bench {
namespace {

struct Case {
  const char* label;
  std::int64_t vector_size;
  double repeated_rate;
};

int run(const CliArgs& args) {
  Env env = parse_env(args);
  warn_unused(args);
  print_header("Impact of Reuse Bounds", "Fig. 8");

  const std::vector<Case> cases{{"Case(1) v=64 r=50%", 64, 0.50},
                                {"Case(2) v=16 r=25%", 16, 0.25},
                                {"Case(3) v=32 r=75%", 32, 0.75}};

  for (const DataDistribution dist :
       {DataDistribution::kUniform, DataDistribution::kGaussian}) {
    std::printf("-- %s distribution --\n", to_string(dist));
    TextTable table;
    table.add_column("bounds", Align::kLeft);
    for (const Case& c : cases) table.add_column(c.label);

    struct Best {
      double gflops = 0.0;
      ReuseBounds bounds;
    };
    std::vector<Best> best(cases.size());

    for (const ReuseBounds& bounds : fig8_bound_sweep()) {
      std::vector<std::string> row{bounds.to_string()};
      for (std::size_t i = 0; i < cases.size(); ++i) {
        SyntheticConfig cfg = base_synth(env);
        cfg.vector_size = cases[i].vector_size;
        cfg.repeated_rate = cases[i].repeated_rate;
        cfg.distribution = dist;
        const WorkloadStream stream = generate_synthetic(cfg);
        const double gflops = measure_gflops(stream, bounds, env.cluster());
        row.push_back(fmt_gflops(gflops));
        if (gflops > best[i].gflops) best[i] = Best{gflops, bounds};
      }
      table.add_row(std::move(row));
    }
    std::printf("%s", table.render().c_str());
    for (std::size_t i = 0; i < cases.size(); ++i) {
      std::printf("best %s: %s at %s\n", cases[i].label,
                  fmt_gflops(best[i].gflops).c_str(),
                  best[i].bounds.to_string().c_str());
    }

    // Ablation: collapse the three per-tier bounds into one shared value.
    std::printf("ablation - single shared bound (b,b,b):\n");
    for (std::int64_t b = 0; b <= 2; ++b) {
      std::printf("  b=%lld:", static_cast<long long>(b));
      for (const Case& c : cases) {
        SyntheticConfig cfg = base_synth(env);
        cfg.vector_size = c.vector_size;
        cfg.repeated_rate = c.repeated_rate;
        cfg.distribution = dist;
        const WorkloadStream stream = generate_synthetic(cfg);
        std::printf(" %s",
                    fmt_gflops(measure_gflops(stream, ReuseBounds{b, b, b},
                                              env.cluster()))
                        .c_str());
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf(
      "paper shape: the best triple shifts with the data characteristics "
      "(e.g. (0,2,0) for Case(1) vs (0,2,2) for Case(3)), motivating the "
      "regression model; per-tier bounds dominate a single shared slack.\n");
  return 0;
}

}  // namespace
}  // namespace micco::bench

int main(int argc, char** argv) {
  return micco::bench::run(micco::CliArgs(argc, argv));
}
