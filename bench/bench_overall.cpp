// Fig. 7 — Overall performance: Groute vs MICCO-naive vs MICCO-optimal
// throughput across two repeated-data distributions (Uniform, Gaussian),
// vector sizes {8, 16, 32, 64} and repeated rates {25, 50, 75, 100}%.
// Tensor size 384, eight GPUs; blue-star speedups are MICCO-optimal/Groute.
#include <cstdio>
#include <utility>
#include <vector>

#include "bench_common.hpp"

namespace micco::bench {
namespace {

int run(const CliArgs& args) {
  Env env = parse_env(args);
  // The evaluated system stages tensors through host memory; peer-to-peer
  // replica fetches are the asynchronous-copy extension (--p2p=on ablation).
  const bool p2p = args.get_bool("p2p", false);
  warn_unused(args);
  print_header("Overall Performance", "Fig. 7");

  TrainedBoundsModel model = train_model(env);

  CsvWriter csv;
  for (const char* column :
       {"distribution", "vector_size", "repeat_rate", "groute_gflops",
        "micco_naive_gflops", "micco_optimal_gflops", "speedup"}) {
    csv.add_column(column);
  }

  const std::vector<std::int64_t> vector_sizes =
      env.quick ? std::vector<std::int64_t>{8, 16}
                : std::vector<std::int64_t>{8, 16, 32, 64};
  const std::vector<double> rates{0.25, 0.50, 0.75, 1.00};

  for (const DataDistribution dist :
       {DataDistribution::kUniform, DataDistribution::kGaussian}) {
    std::printf("-- %s distribution (tensor size 384, %d GPUs)%s --\n",
                to_string(dist), env.gpus, p2p ? "" : " [P2P off]");
    TextTable table;
    table.add_column("vector", Align::kLeft);
    table.add_column("repeat");
    table.add_column("Groute GFLOPS");
    table.add_column("MICCO-naive GFLOPS");
    table.add_column("MICCO-optimal GFLOPS");
    table.add_column("speedup*");

    // Each (vector size, repeated rate) point is an independent measurement
    // (its own stream, its own fresh clusters); fan the grid out over the
    // worker pool and fill the table serially in grid order afterwards.
    std::vector<std::pair<std::int64_t, double>> grid;
    for (const std::int64_t vec_size : vector_sizes) {
      for (const double rate : rates) grid.emplace_back(vec_size, rate);
    }
    const auto results = run_trials(
        static_cast<std::int64_t>(grid.size()), [&](std::size_t i) {
          SyntheticConfig cfg = base_synth(env);
          cfg.vector_size = grid[i].first;
          cfg.repeated_rate = grid[i].second;
          cfg.distribution = dist;
          const WorkloadStream stream = generate_synthetic(cfg);

          ClusterConfig cluster = env.cluster();
          cluster.p2p_enabled = p2p;
          return compare_schedulers(
              stream, cluster,
              {SchedulerKind::kGroute, SchedulerKind::kMiccoNaive,
               SchedulerKind::kMiccoOptimal},
              model.provider.get());
        });

    std::vector<double> speedups;
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const auto& entries = results[i];
      const std::int64_t vec_size = grid[i].first;
      const double rate = grid[i].second;
      const double speedup = speedup_of(entries, SchedulerKind::kMiccoOptimal,
                                        SchedulerKind::kGroute);
      speedups.push_back(speedup);
      csv.add_row({to_string(dist), std::to_string(vec_size),
                   stats::format(rate, 2), fmt_gflops(entries[0].gflops()),
                   fmt_gflops(entries[1].gflops()),
                   fmt_gflops(entries[2].gflops()),
                   stats::format(speedup, 4)});
      table.add_row({std::to_string(vec_size),
                     stats::format(rate * 100, 0) + "%",
                     fmt_gflops(entries[0].gflops()),
                     fmt_gflops(entries[1].gflops()),
                     fmt_gflops(entries[2].gflops()),
                     fmt_speedup(speedup)});
      if (rate == rates.back()) table.add_rule();
    }
    std::printf("%s", table.render().c_str());
    std::printf("geomean speedup (MICCO-optimal / Groute): %s   max: %s\n\n",
                fmt_speedup(stats::geomean(speedups)).c_str(),
                fmt_speedup(stats::max(speedups)).c_str());
  }
  maybe_write_csv(env, "fig7_overall", csv);
  {
    // Telemetry deep-dive on the paper's headline point (Uniform, vector
    // size 64, 50 % repeated): full decision counters + device rollups.
    SyntheticConfig cfg = base_synth(env);
    ClusterConfig cluster = env.cluster();
    cluster.p2p_enabled = p2p;
    maybe_write_report(env, "fig7_overall_micco", generate_synthetic(cfg),
                       cluster, SchedulerKind::kMiccoOptimal,
                       model.provider.get());
  }
  std::printf(
      "paper shape: MICCO-optimal wins everywhere; geomean 1.57x (Uniform) "
      "and 1.65x (Gaussian), max 2.25x;\nbest repeated rate 75%% for "
      "Uniform, 50%% for Gaussian; large Gaussian vectors sag.\n");
  return 0;
}

}  // namespace
}  // namespace micco::bench

int main(int argc, char** argv) {
  return micco::bench::run(micco::CliArgs(argc, argv));
}
