// Property-based sweeps (TEST_P): invariants that must hold across the
// whole workload-configuration space, not just hand-picked examples.
#include <gtest/gtest.h>

#include <limits>

#include "core/experiment.hpp"
#include "core/verify.hpp"
#include "workload/synthetic.hpp"

namespace micco {
namespace {

struct PropertyCase {
  std::int64_t vector_size;
  double repeated_rate;
  DataDistribution distribution;
  int devices;
  std::uint64_t seed;
};

std::string case_name(const ::testing::TestParamInfo<PropertyCase>& info) {
  const PropertyCase& p = info.param;
  std::string name = "v";
  name += std::to_string(p.vector_size);
  name += "_r";
  name += std::to_string(static_cast<int>(p.repeated_rate * 100));
  name += "_";
  name += to_string(p.distribution);
  name += "_g";
  name += std::to_string(p.devices);
  name += "_s";
  name += std::to_string(p.seed);
  return name;
}

class SchedulerProperties : public ::testing::TestWithParam<PropertyCase> {
 protected:
  WorkloadStream make_stream() const {
    const PropertyCase& p = GetParam();
    SyntheticConfig cfg;
    cfg.num_vectors = 6;
    cfg.vector_size = p.vector_size;
    cfg.tensor_extent = 48;
    cfg.batch = 2;
    cfg.repeated_rate = p.repeated_rate;
    cfg.distribution = p.distribution;
    cfg.seed = p.seed;
    return generate_synthetic(cfg);
  }

  ClusterConfig make_cluster() const {
    ClusterConfig c;
    c.num_devices = GetParam().devices;
    c.device_capacity_bytes = 128u << 20;
    return c;
  }
};

TEST_P(SchedulerProperties, StreamsAreStructurallyValid) {
  EXPECT_EQ(validate_stream_structure(make_stream()), "");
}

TEST_P(SchedulerProperties, AllWorkIsConservedUnderEveryScheduler) {
  const WorkloadStream stream = make_stream();
  for (const SchedulerKind kind :
       {SchedulerKind::kGroute, SchedulerKind::kRoundRobin,
        SchedulerKind::kMiccoNaive, SchedulerKind::kDataReuseOnly,
        SchedulerKind::kLoadBalanceOnly}) {
    const std::unique_ptr<Scheduler> sched = make_scheduler(kind);
    const RunResult r = run_stream(stream, *sched, make_cluster());
    EXPECT_EQ(r.metrics.total_flops, stream.total_flops())
        << "scheduler " << to_string(kind) << " lost work";
    EXPECT_GT(r.metrics.gflops(), 0.0);
  }
}

TEST_P(SchedulerProperties, OperandAccountingBalances) {
  // Every task supplies 1 or 2 distinct operand slots; each is either a
  // reuse hit or a fetch, never both, never neither.
  const WorkloadStream stream = make_stream();
  std::uint64_t min_slots = 0, max_slots = 0;
  for (const VectorWorkload& v : stream.vectors) {
    for (const ContractionTask& t : v.tasks) {
      min_slots += 1;
      max_slots += t.a.id == t.b.id ? 1 : 2;
    }
  }
  MiccoScheduler sched;
  const RunResult r = run_stream(stream, sched, make_cluster());
  const std::uint64_t total =
      r.metrics.reused_operands + r.metrics.fetched_operands;
  EXPECT_GE(total, min_slots);
  EXPECT_LE(total, max_slots);
}

TEST_P(SchedulerProperties, MemoryNeverExceedsCapacityUnderPressure) {
  const WorkloadStream stream = make_stream();
  ClusterConfig cluster = make_cluster();
  cluster.device_capacity_bytes = capacity_for_oversubscription(
      stream, cluster.num_devices, 1.5,
      8 * stream.vectors[0].tasks[0].a.bytes());

  MiccoScheduler sched;
  ClusterSimulator sim(cluster);
  for (const VectorWorkload& vec : stream.vectors) {
    sched.begin_vector(vec, sim);
    for (const ContractionTask& task : vec.tasks) {
      sim.execute(task, sched.assign(task, sim));
      for (DeviceId d = 0; d < sim.num_devices(); ++d) {
        ASSERT_LE(sim.memory_used(d), sim.memory_capacity(d));
      }
    }
    sim.barrier();
  }
}

TEST_P(SchedulerProperties, ReuseBoundCapsPerVectorImbalance) {
  const WorkloadStream stream = make_stream();
  const ClusterConfig cluster = make_cluster();
  for (const std::int64_t bound : {0LL, 2LL}) {
    MiccoSchedulerOptions opts;
    opts.bounds = ReuseBounds{bound, bound, bound};
    MiccoScheduler sched(opts);
    ClusterSimulator sim(cluster);
    for (const VectorWorkload& vec : stream.vectors) {
      sched.begin_vector(vec, sim);
      for (const ContractionTask& task : vec.tasks) {
        sim.execute(task, sched.assign(task, sim));
      }
      // A device passes the availability gate strictly below
      // balanceNum + bound and each pair adds at most 2 distinct tensors,
      // so a count above balanceNum + bound + 1 is only reachable through
      // the everything-gated fallback — which requires EVERY device to have
      // already saturated its own gate. Check exactly that implication.
      const std::int64_t cap = sched.balance_num() + bound + 1;
      std::int64_t min_count = std::numeric_limits<std::int64_t>::max();
      std::int64_t max_count = 0;
      for (DeviceId d = 0; d < sim.num_devices(); ++d) {
        min_count = std::min(min_count, sched.assigned_count(d));
        max_count = std::max(max_count, sched.assigned_count(d));
      }
      if (max_count > cap) {
        EXPECT_GE(min_count, sched.balance_num() + bound)
            << "a device overflowed its reuse bound while another still had "
               "gated capacity";
      }
      sim.barrier();
    }
  }
}

TEST_P(SchedulerProperties, BarriersMakeMakespanAtLeastAnyDeviceTime) {
  const WorkloadStream stream = make_stream();
  MiccoScheduler sched;
  ClusterSimulator sim(make_cluster());
  for (const VectorWorkload& vec : stream.vectors) {
    sched.begin_vector(vec, sim);
    for (const ContractionTask& task : vec.tasks) {
      sim.execute(task, sched.assign(task, sim));
    }
    sim.barrier();
  }
  for (DeviceId d = 0; d < sim.num_devices(); ++d) {
    EXPECT_LE(sim.busy_time(d), sim.metrics().makespan_s + 1e-12);
  }
}

TEST_P(SchedulerProperties, TighterMemoryNeverReducesEvictions) {
  const WorkloadStream stream = make_stream();
  const std::uint64_t floor_bytes =
      8 * stream.vectors[0].tasks[0].a.bytes();

  std::uint64_t previous_evictions = 0;
  bool first = true;
  for (const double rate : {1.0, 1.5, 2.0}) {
    ClusterConfig cluster = make_cluster();
    cluster.device_capacity_bytes = capacity_for_oversubscription(
        stream, cluster.num_devices, rate, floor_bytes);
    MiccoScheduler sched;
    const RunResult r = run_stream(stream, sched, cluster);
    if (!first) {
      EXPECT_GE(r.metrics.evictions, previous_evictions);
    }
    previous_evictions = r.metrics.evictions;
    first = false;
  }
}

TEST_P(SchedulerProperties, SimulatedRunsAreDeterministic) {
  const WorkloadStream stream = make_stream();
  MiccoScheduler s1, s2;
  const RunResult a = run_stream(stream, s1, make_cluster());
  const RunResult b = run_stream(stream, s2, make_cluster());
  EXPECT_DOUBLE_EQ(a.metrics.makespan_s, b.metrics.makespan_s);
  EXPECT_EQ(a.metrics.evictions, b.metrics.evictions);
  EXPECT_EQ(a.metrics.h2d_bytes, b.metrics.h2d_bytes);
  EXPECT_EQ(a.metrics.p2p_bytes, b.metrics.p2p_bytes);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SchedulerProperties,
    ::testing::Values(
        PropertyCase{8, 0.25, DataDistribution::kUniform, 2, 1},
        PropertyCase{8, 1.0, DataDistribution::kGaussian, 2, 2},
        PropertyCase{16, 0.5, DataDistribution::kUniform, 4, 3},
        PropertyCase{16, 0.75, DataDistribution::kGaussian, 4, 4},
        PropertyCase{32, 0.5, DataDistribution::kGaussian, 8, 5},
        PropertyCase{32, 1.0, DataDistribution::kUniform, 8, 6},
        PropertyCase{64, 0.25, DataDistribution::kGaussian, 8, 7},
        PropertyCase{64, 0.75, DataDistribution::kUniform, 3, 8}),
    case_name);

// Numeric transparency across schedulers: digests must match the reference
// regardless of which scheduler ordered the executions (scheduling cannot
// change the math).
class NumericTransparency
    : public ::testing::TestWithParam<DataDistribution> {};

TEST_P(NumericTransparency, DigestMatchesReferenceForAllSchedulers) {
  SyntheticConfig cfg;
  cfg.num_vectors = 4;
  cfg.vector_size = 8;
  cfg.tensor_extent = 6;
  cfg.batch = 1;
  cfg.repeated_rate = 0.75;
  cfg.distribution = GetParam();
  cfg.seed = 77;
  const WorkloadStream stream = generate_synthetic(cfg);
  const double reference = execute_numerically(stream).digest;

  // The simulator does not reorder tasks across a stage boundary and the
  // kernels are pure, so any per-stage permutation a scheduler induces
  // yields the same digest; emulate the extremes.
  WorkloadStream reversed = stream;
  for (VectorWorkload& v : reversed.vectors) {
    std::reverse(v.tasks.begin(), v.tasks.end());
  }
  EXPECT_DOUBLE_EQ(execute_numerically(reversed).digest, reference);
}

INSTANTIATE_TEST_SUITE_P(Distributions, NumericTransparency,
                         ::testing::Values(DataDistribution::kUniform,
                                           DataDistribution::kGaussian),
                         [](const auto& param_info) {
                           return std::string(to_string(param_info.param));
                         });

}  // namespace
}  // namespace micco
