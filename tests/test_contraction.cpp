#include "tensor/contraction.hpp"

#include <gtest/gtest.h>

namespace micco {
namespace {

TEST(MesonContraction, IdentityIsNeutral) {
  constexpr std::int64_t kN = 6;
  Pcg32 rng(1);
  const Tensor a = Tensor::random(Shape::matrix(2, kN), rng);
  Tensor identity(Shape::matrix(2, kN));
  for (std::int64_t b = 0; b < 2; ++b) {
    for (std::int64_t i = 0; i < kN; ++i) {
      identity.at(b, i, i) = cplx{1.0, 0.0};
    }
  }
  const Tensor right = contract_meson(a, identity);
  const Tensor left = contract_meson(identity, a);
  EXPECT_LT(a.max_abs_diff(right), 1e-12);
  EXPECT_LT(a.max_abs_diff(left), 1e-12);
}

TEST(MesonContraction, Known2x2Product) {
  Tensor a(Shape::matrix(1, 2));
  Tensor b(Shape::matrix(1, 2));
  // a = [[1, 2], [3, 4]], b = [[5, 6], [7, 8]] (real parts only)
  a.at(0, 0, 0) = {1, 0}; a.at(0, 0, 1) = {2, 0};
  a.at(0, 1, 0) = {3, 0}; a.at(0, 1, 1) = {4, 0};
  b.at(0, 0, 0) = {5, 0}; b.at(0, 0, 1) = {6, 0};
  b.at(0, 1, 0) = {7, 0}; b.at(0, 1, 1) = {8, 0};
  const Tensor c = contract_meson(a, b);
  EXPECT_DOUBLE_EQ(c.at(0, 0, 0).real(), 19.0);
  EXPECT_DOUBLE_EQ(c.at(0, 0, 1).real(), 22.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1, 0).real(), 43.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1, 1).real(), 50.0);
}

TEST(MesonContraction, ComplexArithmetic) {
  Tensor a(Shape::matrix(1, 1));
  Tensor b(Shape::matrix(1, 1));
  a.at(0, 0, 0) = {1.0, 2.0};
  b.at(0, 0, 0) = {3.0, -1.0};
  const Tensor c = contract_meson(a, b);
  // (1+2i)(3-i) = 3 - i + 6i - 2i^2 = 5 + 5i
  EXPECT_DOUBLE_EQ(c.at(0, 0, 0).real(), 5.0);
  EXPECT_DOUBLE_EQ(c.at(0, 0, 0).imag(), 5.0);
}

TEST(MesonContraction, BatchEntriesIndependent) {
  Pcg32 rng(2);
  const Tensor a = Tensor::random(Shape::matrix(3, 4), rng);
  const Tensor b = Tensor::random(Shape::matrix(3, 4), rng);
  const Tensor c = contract_meson(a, b);

  // Recompute batch 1 alone and compare.
  Tensor a1(Shape::matrix(1, 4)), b1(Shape::matrix(1, 4));
  for (std::int64_t i = 0; i < 4; ++i) {
    for (std::int64_t j = 0; j < 4; ++j) {
      a1.at(0, i, j) = a.at(1, i, j);
      b1.at(0, i, j) = b.at(1, i, j);
    }
  }
  const Tensor c1 = contract_meson(a1, b1);
  for (std::int64_t i = 0; i < 4; ++i) {
    for (std::int64_t j = 0; j < 4; ++j) {
      EXPECT_EQ(c.at(1, i, j), c1.at(0, i, j));
    }
  }
}

TEST(MesonContraction, Associativity) {
  Pcg32 rng(5);
  const Tensor a = Tensor::random(Shape::matrix(2, 5), rng);
  const Tensor b = Tensor::random(Shape::matrix(2, 5), rng);
  const Tensor c = Tensor::random(Shape::matrix(2, 5), rng);
  const Tensor ab_c = contract_meson(contract_meson(a, b), c);
  const Tensor a_bc = contract_meson(a, contract_meson(b, c));
  EXPECT_LT(ab_c.max_abs_diff(a_bc), 1e-10);
}

TEST(BaryonContraction, MatchesManualSum) {
  constexpr std::int64_t kE = 3;
  Pcg32 rng(7);
  const Tensor a = Tensor::random(Shape::rank3(1, kE), rng);
  const Tensor b = Tensor::random(Shape::rank3(1, kE), rng);
  const Tensor c = contract_baryon(a, b);
  ASSERT_EQ(c.shape(), Shape::matrix(1, kE));

  for (std::int64_t i = 0; i < kE; ++i) {
    for (std::int64_t l = 0; l < kE; ++l) {
      cplx acc{0.0, 0.0};
      for (std::int64_t j = 0; j < kE; ++j) {
        for (std::int64_t k = 0; k < kE; ++k) {
          acc += a.at(0, i, j, k) * b.at(0, k, j, l);
        }
      }
      EXPECT_NEAR(std::abs(c.at(0, i, l) - acc), 0.0, 1e-12);
    }
  }
}

TEST(BaryonContraction, OutputIsRank2) {
  Pcg32 rng(8);
  const Tensor a = Tensor::random(Shape::rank3(2, 4), rng);
  const Tensor b = Tensor::random(Shape::rank3(2, 4), rng);
  const Tensor c = contract_baryon(a, b);
  EXPECT_EQ(c.shape().rank(), 2);
  EXPECT_EQ(c.shape().batch(), 2);
}

TEST(BatchedTrace, SumsDiagonalsAcrossBatch) {
  Tensor m(Shape::matrix(2, 3));
  m.at(0, 0, 0) = {1, 1};
  m.at(0, 1, 1) = {2, 0};
  m.at(0, 2, 2) = {3, 0};
  m.at(1, 0, 0) = {4, -1};
  m.at(1, 1, 1) = {5, 0};
  m.at(1, 2, 2) = {6, 0};
  m.at(1, 0, 2) = {100, 100};  // off-diagonal must not contribute
  const cplx tr = batched_trace(m);
  EXPECT_DOUBLE_EQ(tr.real(), 21.0);
  EXPECT_DOUBLE_EQ(tr.imag(), 0.0);
}

TEST(Flops, MesonCountMatchesFormula) {
  EXPECT_EQ(meson_contraction_flops(1, 2, 3, 4), 8ull * 2 * 3 * 4);
  EXPECT_EQ(meson_contraction_flops(10, 384, 384, 384),
            8ull * 10 * 384 * 384 * 384);
}

TEST(Flops, BaryonCountMatchesFormula) {
  EXPECT_EQ(baryon_contraction_flops(2, 5), 8ull * 2 * 5 * 5 * 5 * 5);
}

TEST(Flops, HadronDispatchesOnRank) {
  EXPECT_EQ(hadron_contraction_flops(2, 4, 16),
            meson_contraction_flops(4, 16, 16, 16));
  EXPECT_EQ(hadron_contraction_flops(3, 4, 16),
            baryon_contraction_flops(4, 16));
}

TEST(Bytes, MesonTrafficCountsThreeMatrices) {
  // 2 operands + 1 output, each extent^2 complex doubles per batch entry.
  EXPECT_EQ(hadron_contraction_bytes(2, 1, 10), 3ull * 100 * sizeof(cplx));
}

TEST(Bytes, BaryonTrafficCountsRank3OperandsRank2Output) {
  EXPECT_EQ(hadron_contraction_bytes(3, 1, 10),
            (2ull * 1000 + 100) * sizeof(cplx));
}

}  // namespace
}  // namespace micco
