// Decision log + cluster event tests: the JSONL stream must be
// deterministic (byte-identical across identical runs), parseable line by
// line, and consistent with the registry's aggregate counters.
#include "obs/events.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "obs/telemetry.hpp"
#include "workload/synthetic.hpp"

namespace micco {
namespace {

SyntheticConfig tiny_workload() {
  SyntheticConfig c;
  c.num_vectors = 3;
  c.vector_size = 12;  // 12 tensor slots -> 6 pairs per vector
  c.tensor_extent = 64;
  c.batch = 2;
  c.repeated_rate = 0.5;
  c.seed = 11;
  return c;
}

std::size_t total_pairs(const WorkloadStream& stream) {
  std::size_t pairs = 0;
  for (const VectorWorkload& vec : stream.vectors) pairs += vec.tasks.size();
  return pairs;
}

ClusterConfig tiny_cluster() {
  ClusterConfig c;
  c.num_devices = 3;
  c.device_capacity_bytes = 1u << 20;  // small: forces some evictions
  return c;
}

std::string run_jsonl(const WorkloadStream& stream) {
  std::ostringstream out;
  obs::JsonlEventSink sink(out);
  obs::Telemetry telemetry;
  telemetry.sink = &sink;
  MiccoScheduler sched;
  RunOptions options;
  options.telemetry = &telemetry;
  run_stream(stream, sched, tiny_cluster(), options);
  return out.str();
}

TEST(ObsEvents, JsonlLogIsByteIdenticalAcrossRuns) {
  const WorkloadStream stream = generate_synthetic(tiny_workload());
  EXPECT_EQ(run_jsonl(stream), run_jsonl(stream));
}

TEST(ObsEvents, EveryLogLineParsesAndCarriesAnEventTag) {
  const WorkloadStream stream = generate_synthetic(tiny_workload());
  std::istringstream lines(run_jsonl(stream));
  std::string line;
  std::size_t decisions = 0;
  std::size_t total = 0;
  while (std::getline(lines, line)) {
    std::string error;
    const auto doc = obs::parse_json(line, &error);
    ASSERT_TRUE(doc.has_value()) << error << " in: " << line;
    const obs::JsonValue* event = doc->find("event");
    ASSERT_NE(event, nullptr);
    if (event->as_string() == "decision") ++decisions;
    ++total;
  }
  EXPECT_EQ(decisions, total_pairs(stream));  // one per pair
  EXPECT_GT(total, decisions);                // plus fetches / barriers
}

TEST(ObsEvents, DecisionSequenceIsGaplessAndCursorIsStamped) {
  const WorkloadStream stream = generate_synthetic(tiny_workload());
  obs::MemoryEventSink sink;
  obs::Telemetry telemetry;
  telemetry.sink = &sink;
  MiccoScheduler sched;
  RunOptions options;
  options.telemetry = &telemetry;
  run_stream(stream, sched, tiny_cluster(), options);

  ASSERT_EQ(sink.decisions().size(), total_pairs(stream));
  std::uint64_t seq = 0;
  for (const obs::DecisionEvent& d : sink.decisions()) {
    EXPECT_EQ(d.seq, seq++);
    EXPECT_GE(d.vector_index, 0);
    EXPECT_GE(d.pair_index, 0);
    EXPECT_LT(d.pair_index,
              static_cast<std::int64_t>(stream.vectors[0].tasks.size()));
    EXPECT_EQ(d.scheduler, "MICCO");
    EXPECT_FALSE(d.candidates.empty());
    // The winner always comes from the candidate set.
    EXPECT_NE(std::find(d.candidates.begin(), d.candidates.end(), d.chosen),
              d.candidates.end());
  }
}

TEST(ObsEvents, PatternCountersMatchLoggedDecisions) {
  const WorkloadStream stream = generate_synthetic(tiny_workload());
  obs::MemoryEventSink sink;
  obs::Telemetry telemetry;
  telemetry.sink = &sink;
  MiccoScheduler sched;
  RunOptions options;
  options.telemetry = &telemetry;
  run_stream(stream, sched, tiny_cluster(), options);

  std::uint64_t two_new = 0;
  for (const obs::DecisionEvent& d : sink.decisions()) {
    if (d.pattern == "TwoNew") ++two_new;
  }
  const obs::Counter* counter =
      telemetry.registry.find_counter("sched.pattern.two_new");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->value(), two_new);
  const obs::Counter* decisions =
      telemetry.registry.find_counter("sched.decisions");
  ASSERT_NE(decisions, nullptr);
  EXPECT_EQ(decisions->value(), sink.decisions().size());
}

TEST(ObsEvents, ClusterEventsCoverFetchEvictionAndBarrier) {
  const WorkloadStream stream = generate_synthetic(tiny_workload());
  obs::MemoryEventSink sink;
  obs::Telemetry telemetry;
  telemetry.sink = &sink;
  MiccoScheduler sched;
  RunOptions options;
  options.telemetry = &telemetry;
  run_stream(stream, sched, tiny_cluster(), options);

  std::size_t fetches = 0;
  std::size_t evictions = 0;
  std::size_t barriers = 0;
  for (const obs::ClusterEvent& e : sink.cluster_events()) {
    switch (e.kind) {
      case obs::ClusterEventKind::kFetch:
        ++fetches;
        EXPECT_GT(e.bytes, 0u);
        EXPECT_EQ(e.detail, "h2d");  // P2P disabled in this cluster
        break;
      case obs::ClusterEventKind::kEviction:
        ++evictions;
        EXPECT_GE(e.victim_age_s, 0.0);
        break;
      case obs::ClusterEventKind::kBarrier:
        ++barriers;
        EXPECT_GT(e.duration_s, 0.0);
        break;
      default:  // fault events never fire on a fault-free run
        ADD_FAILURE() << "unexpected event kind: " << to_string(e.kind);
        break;
    }
  }
  EXPECT_GT(fetches, 0u);
  EXPECT_GT(evictions, 0u);  // 8 MiB devices cannot hold the stream
  EXPECT_GT(barriers, 0u);
}

TEST(ObsEvents, EventJsonOmitsIrrelevantFields) {
  obs::ClusterEvent barrier;
  barrier.kind = obs::ClusterEventKind::kBarrier;
  barrier.device = 1;
  barrier.time_s = 2.0;
  barrier.duration_s = 0.5;
  const obs::JsonValue doc = barrier.to_json();
  EXPECT_EQ(doc.find("tensor"), nullptr);
  EXPECT_EQ(doc.find("bytes"), nullptr);
  EXPECT_EQ(doc.at("event").as_string(), "barrier");

  obs::ClusterEvent evict;
  evict.kind = obs::ClusterEventKind::kEviction;
  evict.device = 0;
  evict.tensor = 7;
  evict.bytes = 128;
  evict.detail = "operand_fetch";
  evict.victim_age_s = 0.25;
  const obs::JsonValue edoc = evict.to_json();
  EXPECT_DOUBLE_EQ(edoc.at("victim_age_s").as_double(), 0.25);
  EXPECT_EQ(edoc.at("detail").as_string(), "operand_fetch");
}

TEST(ObsEvents, TelemetryWithoutSinkStillCounts) {
  const WorkloadStream stream = generate_synthetic(tiny_workload());
  obs::Telemetry telemetry;  // no sink attached
  MiccoScheduler sched;
  RunOptions options;
  options.telemetry = &telemetry;
  run_stream(stream, sched, tiny_cluster(), options);
  const obs::Counter* decisions =
      telemetry.registry.find_counter("sched.decisions");
  ASSERT_NE(decisions, nullptr);
  EXPECT_EQ(decisions->value(), total_pairs(stream));
}

TEST(ObsEvents, TelemetryDoesNotPerturbScheduling) {
  const WorkloadStream stream = generate_synthetic(tiny_workload());
  MiccoScheduler plain;
  const RunResult base = run_stream(stream, plain, tiny_cluster());

  obs::MemoryEventSink sink;
  obs::Telemetry telemetry;
  telemetry.sink = &sink;
  MiccoScheduler observed;
  RunOptions options;
  options.telemetry = &telemetry;
  const RunResult traced = run_stream(stream, observed, tiny_cluster(), options);

  EXPECT_DOUBLE_EQ(base.metrics.makespan_s, traced.metrics.makespan_s);
  EXPECT_EQ(base.metrics.evictions, traced.metrics.evictions);
  EXPECT_EQ(base.metrics.reused_operands, traced.metrics.reused_operands);
}

// -- BufferedJsonlEventSink ------------------------------------------------

std::string run_buffered_jsonl(const WorkloadStream& stream,
                               std::size_t flush_bytes) {
  std::ostringstream out;
  {
    obs::BufferedJsonlEventSink sink(out, flush_bytes);
    obs::Telemetry telemetry;
    telemetry.sink = &sink;
    MiccoScheduler sched;
    RunOptions options;
    options.telemetry = &telemetry;
    run_stream(stream, sched, tiny_cluster(), options);
  }  // sink destruction drains the buffer
  return out.str();
}

TEST(ObsEvents, BufferedSinkIsLineIdenticalToUnbuffered) {
  const WorkloadStream stream = generate_synthetic(tiny_workload());
  const std::string plain = run_jsonl(stream);
  // Thresholds straddle the interesting regimes: every-line flush, mid-run
  // flushes, and one single flush at destruction.
  for (const std::size_t flush_bytes : {std::size_t{1}, std::size_t{4096},
                                        std::size_t{1} << 30}) {
    EXPECT_EQ(plain, run_buffered_jsonl(stream, flush_bytes))
        << "flush_bytes=" << flush_bytes;
  }
}

TEST(ObsEvents, BufferedSinkFlushesOnDestruction) {
  std::ostringstream out;
  {
    obs::BufferedJsonlEventSink sink(out);  // 64 KiB: nothing auto-flushes
    obs::DecisionEvent event;
    event.scheduler = "test";
    sink.decision(event);
    EXPECT_EQ(out.str(), "");  // still buffered
  }
  EXPECT_NE(out.str().find("\"scheduler\":\"test\""), std::string::npos);
  EXPECT_EQ(out.str().back(), '\n');
}

TEST(ObsEvents, BufferedSinkExplicitFlushDrains) {
  std::ostringstream out;
  obs::BufferedJsonlEventSink sink(out);
  obs::ClusterEvent event;
  event.kind = obs::ClusterEventKind::kFetch;
  sink.cluster(event);
  EXPECT_EQ(out.str(), "");
  sink.flush();
  EXPECT_NE(out.str().find("\"event\":\"fetch\""), std::string::npos);
  sink.flush();  // idempotent on an empty buffer
  const std::string text = out.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 1);
}

TEST(ObsEvents, BufferedSinkFlushesFaultEventsImmediately) {
  for (const obs::ClusterEventKind kind :
       {obs::ClusterEventKind::kDeviceFailure,
        obs::ClusterEventKind::kCapacityLoss}) {
    std::ostringstream out;
    obs::BufferedJsonlEventSink sink(out);
    obs::DecisionEvent decision;
    sink.decision(decision);
    EXPECT_EQ(out.str(), "");  // ordinary events wait for the threshold
    obs::ClusterEvent fault;
    fault.kind = kind;
    fault.device = 1;
    sink.cluster(fault);
    // The fault drains the whole buffer so the log on disk stays ordered.
    const std::string text = out.str();
    EXPECT_NE(text.find("\"event\":\"decision\""), std::string::npos);
    EXPECT_NE(text.find(obs::to_string(kind)), std::string::npos);
  }
}

}  // namespace
}  // namespace micco
