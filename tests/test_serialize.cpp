#include "ml/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/rng.hpp"

namespace micco::ml {
namespace {

Dataset training_data(int n, std::uint64_t seed) {
  Dataset d(2);
  Pcg32 rng(seed);
  for (int i = 0; i < n; ++i) {
    const double a = rng.uniform_real(0, 1);
    const double b = rng.uniform_real(0, 1);
    const double features[2] = {a, b};
    d.add(features, (a > 0.5 ? 2.0 : 0.0) + b * b);
  }
  return d;
}

/// Round-trips a model through the text format and checks predictions are
/// bit-identical on every training row.
void expect_roundtrip_identical(const Regressor& model, const Dataset& data) {
  std::stringstream buffer;
  save_regressor(model, buffer);
  std::string error;
  const std::unique_ptr<Regressor> loaded = load_regressor(buffer, &error);
  ASSERT_NE(loaded, nullptr) << error;
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_DOUBLE_EQ(model.predict(data.row(i)), loaded->predict(data.row(i)))
        << "row " << i;
  }
}

TEST(Serialize, TreeRoundTrip) {
  const Dataset d = training_data(100, 1);
  RegressionTree tree;
  tree.fit(d);
  expect_roundtrip_identical(tree, d);
}

TEST(Serialize, ForestRoundTrip) {
  const Dataset d = training_data(100, 2);
  ForestConfig cfg;
  cfg.n_trees = 12;
  RandomForest forest(cfg);
  forest.fit(d);
  expect_roundtrip_identical(forest, d);
}

TEST(Serialize, BoostingRoundTrip) {
  const Dataset d = training_data(100, 3);
  BoostingConfig cfg;
  cfg.n_stages = 20;
  GradientBoosting gbm(cfg);
  gbm.fit(d);
  expect_roundtrip_identical(gbm, d);
}

TEST(Serialize, LinearRoundTrip) {
  const Dataset d = training_data(50, 4);
  LinearRegression lr;
  lr.fit(d);
  expect_roundtrip_identical(lr, d);
}

TEST(Serialize, LoadedForestHasSameTreeCount) {
  const Dataset d = training_data(60, 5);
  ForestConfig cfg;
  cfg.n_trees = 7;
  RandomForest forest(cfg);
  forest.fit(d);
  std::stringstream buffer;
  save_regressor(forest, buffer);
  const auto loaded = load_regressor(buffer);
  const auto* loaded_forest = dynamic_cast<RandomForest*>(loaded.get());
  ASSERT_NE(loaded_forest, nullptr);
  EXPECT_EQ(loaded_forest->tree_count(), 7u);
}

TEST(Serialize, RejectsGarbageInput) {
  std::stringstream buffer("not a model at all");
  std::string error;
  EXPECT_EQ(load_regressor(buffer, &error), nullptr);
  EXPECT_NE(error.find("not a micco model"), std::string::npos);
}

TEST(Serialize, RejectsUnknownVersion) {
  std::stringstream buffer("micco-model v99 forest 1");
  std::string error;
  EXPECT_EQ(load_regressor(buffer, &error), nullptr);
  EXPECT_NE(error.find("version"), std::string::npos);
}

TEST(Serialize, RejectsUnknownType) {
  std::stringstream buffer("micco-model v1 neuralnet");
  std::string error;
  EXPECT_EQ(load_regressor(buffer, &error), nullptr);
  EXPECT_NE(error.find("unknown model type"), std::string::npos);
}

TEST(Serialize, RejectsTruncatedTree) {
  std::stringstream buffer("micco-model v1 tree\ntree 3\n-1 0 1.5 -1 -1\n");
  std::string error;
  EXPECT_EQ(load_regressor(buffer, &error), nullptr);
  EXPECT_NE(error.find("truncated"), std::string::npos);
}

TEST(Serialize, RejectsOutOfRangeChildIndices) {
  std::stringstream buffer(
      "micco-model v1 tree\ntree 1\n0 0.5 0 7 8\n");
  std::string error;
  EXPECT_EQ(load_regressor(buffer, &error), nullptr);
  EXPECT_NE(error.find("out of range"), std::string::npos);
}

TEST(Serialize, RejectsBadBoostingLearningRate) {
  std::stringstream buffer("micco-model v1 boosting 1 0.0 7.5\n");
  std::string error;
  EXPECT_EQ(load_regressor(buffer, &error), nullptr);
  EXPECT_NE(error.find("boosting header"), std::string::npos);
}

TEST(Serialize, FileRoundTrip) {
  const Dataset d = training_data(60, 6);
  LinearRegression lr;
  lr.fit(d);
  const std::string path = "/tmp/micco_test_model.txt";
  save_regressor_file(lr, path);
  std::string error;
  const auto loaded = load_regressor_file(path, &error);
  ASSERT_NE(loaded, nullptr) << error;
  EXPECT_DOUBLE_EQ(lr.predict(d.row(0)), loaded->predict(d.row(0)));
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileReportsError) {
  std::string error;
  EXPECT_EQ(load_regressor_file("/nonexistent/model.txt", &error), nullptr);
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST(Serialize, SavingUnfittedModelAborts) {
  std::stringstream buffer;
  RandomForest forest;
  EXPECT_DEATH(save_regressor(forest, buffer), "unfitted");
}

TEST(TreeExport, NodesRoundTripStructurally) {
  const Dataset d = training_data(80, 7);
  RegressionTree tree;
  tree.fit(d);
  const auto nodes = tree.export_nodes();
  EXPECT_EQ(nodes.size(), tree.node_count());
  const RegressionTree rebuilt = RegressionTree::import_nodes(nodes);
  EXPECT_EQ(rebuilt.node_count(), tree.node_count());
  EXPECT_EQ(rebuilt.depth(), tree.depth());
}

}  // namespace
}  // namespace micco::ml
