#include "obs/metrics.hpp"

#include <gtest/gtest.h>

namespace micco::obs {
namespace {

TEST(ObsMetrics, CounterAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
}

TEST(ObsMetrics, GaugeKeepsLastValue) {
  Gauge g;
  g.set(1.5);
  g.set(-2.0);
  EXPECT_DOUBLE_EQ(g.value(), -2.0);
}

TEST(ObsMetrics, HistogramBucketsByUpperBound) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1
  h.observe(1.0);    // <= 1 (bound is inclusive)
  h.observe(5.0);    // <= 10
  h.observe(1000.0); // overflow
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 0u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1006.5);
  EXPECT_DOUBLE_EQ(h.mean(), 1006.5 / 4.0);
}

TEST(ObsMetrics, EmptyHistogramMeanIsZero) {
  Histogram h({1.0});
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(ObsMetrics, RegistryReturnsStableReferences) {
  MetricsRegistry reg;
  Counter& a = reg.counter("a");
  a.add(3);
  // Creating more metrics must not invalidate the first reference.
  for (int i = 0; i < 100; ++i) {
    std::string name = "c";
    name += std::to_string(i);
    reg.counter(name);
  }
  EXPECT_EQ(&reg.counter("a"), &a);
  EXPECT_EQ(reg.counter("a").value(), 3u);
}

TEST(ObsMetrics, HistogramBoundsFixedAtCreation) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h", {1.0, 2.0});
  // Re-request with different bounds returns the original histogram.
  Histogram& again = reg.histogram("h", {99.0});
  EXPECT_EQ(&again, &h);
  EXPECT_EQ(again.upper_bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(ObsMetrics, FindDoesNotCreate) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.find_counter("nope"), nullptr);
  EXPECT_EQ(reg.find_gauge("nope"), nullptr);
  EXPECT_EQ(reg.find_histogram("nope"), nullptr);
  EXPECT_EQ(reg.size(), 0u);
  reg.counter("yes");
  EXPECT_NE(reg.find_counter("yes"), nullptr);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(ObsMetrics, SnapshotSortsNamesAndCarriesHistogramShape) {
  MetricsRegistry reg;
  reg.counter("z.count").add(2);
  reg.counter("a.count").add(1);
  reg.gauge("g").set(0.25);
  reg.histogram("h", {1.0, 2.0}).observe(1.5);

  const JsonValue snap = reg.snapshot();
  const JsonValue& counters = snap.at("counters");
  ASSERT_EQ(counters.members().size(), 2u);
  EXPECT_EQ(counters.members()[0].first, "a.count");  // sorted
  EXPECT_EQ(counters.members()[1].first, "z.count");
  EXPECT_DOUBLE_EQ(snap.at("gauges").at("g").as_double(), 0.25);

  const JsonValue& hist = snap.at("histograms").at("h");
  EXPECT_EQ(hist.at("upper_bounds").items().size(), 2u);
  EXPECT_EQ(hist.at("counts").items().size(), 3u);  // bounds + overflow
  EXPECT_EQ(hist.at("counts").items()[1].as_int(), 1);
  EXPECT_EQ(hist.at("count").as_int(), 1);
  EXPECT_DOUBLE_EQ(hist.at("sum").as_double(), 1.5);
}

}  // namespace
}  // namespace micco::obs
