#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace micco::obs {
namespace {

TEST(ObsMetrics, CounterAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
}

TEST(ObsMetrics, GaugeKeepsLastValue) {
  Gauge g;
  g.set(1.5);
  g.set(-2.0);
  EXPECT_DOUBLE_EQ(g.value(), -2.0);
}

TEST(ObsMetrics, HistogramBucketsByUpperBound) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1
  h.observe(1.0);    // <= 1 (bound is inclusive)
  h.observe(5.0);    // <= 10
  h.observe(1000.0); // overflow
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 0u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1006.5);
  EXPECT_DOUBLE_EQ(h.mean(), 1006.5 / 4.0);
}

TEST(ObsMetrics, EmptyHistogramMeanIsZero) {
  Histogram h({1.0});
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(ObsMetrics, RegistryReturnsStableReferences) {
  MetricsRegistry reg;
  Counter& a = reg.counter("a");
  a.add(3);
  // Creating more metrics must not invalidate the first reference.
  for (int i = 0; i < 100; ++i) {
    std::string name = "c";
    name += std::to_string(i);
    reg.counter(name);
  }
  EXPECT_EQ(&reg.counter("a"), &a);
  EXPECT_EQ(reg.counter("a").value(), 3u);
}

TEST(ObsMetrics, HistogramBoundsFixedAtCreation) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h", {1.0, 2.0});
  // Re-request with different bounds returns the original histogram.
  Histogram& again = reg.histogram("h", {99.0});
  EXPECT_EQ(&again, &h);
  EXPECT_EQ(again.upper_bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(ObsMetrics, FindDoesNotCreate) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.find_counter("nope"), nullptr);
  EXPECT_EQ(reg.find_gauge("nope"), nullptr);
  EXPECT_EQ(reg.find_histogram("nope"), nullptr);
  EXPECT_EQ(reg.size(), 0u);
  reg.counter("yes");
  EXPECT_NE(reg.find_counter("yes"), nullptr);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(ObsMetrics, SnapshotSortsNamesAndCarriesHistogramShape) {
  MetricsRegistry reg;
  reg.counter("z.count").add(2);
  reg.counter("a.count").add(1);
  reg.gauge("g").set(0.25);
  reg.histogram("h", {1.0, 2.0}).observe(1.5);

  const JsonValue snap = reg.snapshot();
  const JsonValue& counters = snap.at("counters");
  ASSERT_EQ(counters.members().size(), 2u);
  EXPECT_EQ(counters.members()[0].first, "a.count");  // sorted
  EXPECT_EQ(counters.members()[1].first, "z.count");
  EXPECT_DOUBLE_EQ(snap.at("gauges").at("g").as_double(), 0.25);

  const JsonValue& hist = snap.at("histograms").at("h");
  EXPECT_EQ(hist.at("upper_bounds").items().size(), 2u);
  EXPECT_EQ(hist.at("counts").items().size(), 3u);  // bounds + overflow
  EXPECT_EQ(hist.at("counts").items()[1].as_int(), 1);
  EXPECT_EQ(hist.at("count").as_int(), 1);
  EXPECT_DOUBLE_EQ(hist.at("sum").as_double(), 1.5);
}

// -- quantiles (Prometheus-style linear interpolation) ----------------------

TEST(ObsMetrics, QuantileOfEmptyHistogramIsZero) {
  Histogram h({1.0, 10.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(ObsMetrics, QuantileInterpolatesInsideTheOwningBucket) {
  Histogram h({10.0, 20.0});
  // Four observations in (10, 20]: the median sits at rank 2 of 4, i.e.
  // halfway through the second bucket.
  for (const double v : {12.0, 14.0, 16.0, 18.0}) h.observe(v);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 15.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 20.0);
}

TEST(ObsMetrics, QuantileFirstBucketInterpolatesFromZero) {
  Histogram h({10.0, 20.0});
  h.observe(3.0);
  h.observe(7.0);
  // Both in the first bucket; p50 = rank 1 of 2 → halfway from 0 to 10.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
}

TEST(ObsMetrics, QuantileOverflowBucketReportsLargestFiniteBound) {
  Histogram h({10.0, 20.0});
  h.observe(999.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 20.0);
}

TEST(ObsMetrics, QuantileClampsQAndSkipsEmptyBuckets) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(50.0);  // only the third bucket is populated
  EXPECT_DOUBLE_EQ(h.quantile(-1.0), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));
  // All mass in (10, 100]: every quantile lands there.
  EXPECT_GE(h.quantile(0.01), 10.0);
  EXPECT_LE(h.quantile(0.99), 100.0);
}

TEST(ObsMetrics, QuantileFromMatchesMemberQuantile) {
  Histogram h({1.0, 10.0, 100.0});
  for (const double v : {0.5, 2.0, 3.0, 42.0, 999.0}) h.observe(v);
  const std::vector<std::uint64_t> counts = h.bucket_counts();
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(
        Histogram::quantile_from(h.upper_bounds(), counts, h.count(), q),
        h.quantile(q));
  }
}

// -- merge / scratch --------------------------------------------------------

TEST(ObsMetrics, MergeIsAssociativeAndExact) {
  const std::vector<double> bounds{1.0, 10.0, 100.0};
  Histogram a(bounds);
  Histogram b(bounds);
  Histogram c(bounds);
  for (const double v : {0.1, 5.0}) a.observe(v);
  for (const double v : {50.0, 500.0}) b.observe(v);
  c.observe(7.5);

  // (a ⊕ b) ⊕ c  vs  a ⊕ (b ⊕ c), materialised via fresh accumulators.
  Histogram left(bounds);
  left.merge_from(a);
  left.merge_from(b);
  left.merge_from(c);
  Histogram right_tail(bounds);
  right_tail.merge_from(b);
  right_tail.merge_from(c);
  Histogram right(bounds);
  right.merge_from(a);
  right.merge_from(right_tail);

  EXPECT_EQ(left.bucket_counts(), right.bucket_counts());
  EXPECT_EQ(left.count(), right.count());
  EXPECT_EQ(left.count(), 5u);
  EXPECT_DOUBLE_EQ(left.sum(), right.sum());
  for (const double q : {0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(left.quantile(q), right.quantile(q));
  }
}

TEST(ObsMetrics, ScratchFlushMatchesDirectObservation) {
  const std::vector<double> bounds{1.0, 10.0};
  Histogram direct(bounds);
  Histogram via_scratch(bounds);
  HistogramScratch scratch(bounds);
  for (const double v : {0.2, 5.0, 100.0}) {
    direct.observe(v);
    scratch.observe(v);
  }
  EXPECT_EQ(scratch.count(), 3u);
  scratch.flush_into(via_scratch);
  EXPECT_EQ(via_scratch.bucket_counts(), direct.bucket_counts());
  EXPECT_DOUBLE_EQ(via_scratch.sum(), direct.sum());
  // Flush resets the scratch; a second flush is a no-op.
  EXPECT_EQ(scratch.count(), 0u);
  scratch.flush_into(via_scratch);
  EXPECT_EQ(via_scratch.count(), direct.count());
}

// -- exposition -------------------------------------------------------------

TEST(ObsMetrics, QuantileSummaryReducesHistograms) {
  MetricsRegistry reg;
  reg.counter("c").add(3);
  reg.gauge("g").set(0.5);
  Histogram& h = reg.histogram("h", {10.0, 20.0});
  for (const double v : {12.0, 14.0, 16.0, 18.0}) h.observe(v);

  const JsonValue summary = reg.quantile_summary();
  EXPECT_EQ(summary.at("counters").at("c").as_int(), 3);
  EXPECT_DOUBLE_EQ(summary.at("gauges").at("g").as_double(), 0.5);
  const JsonValue& entry = summary.at("histograms").at("h");
  EXPECT_EQ(entry.at("count").as_int(), 4);
  EXPECT_DOUBLE_EQ(entry.at("sum").as_double(), 60.0);
  EXPECT_DOUBLE_EQ(entry.at("mean").as_double(), 15.0);
  EXPECT_DOUBLE_EQ(entry.at("p50").as_double(), h.quantile(0.5));
  EXPECT_DOUBLE_EQ(entry.at("p90").as_double(), h.quantile(0.9));
  EXPECT_DOUBLE_EQ(entry.at("p99").as_double(), h.quantile(0.99));
}

TEST(ObsMetrics, PrometheusTextExposesAllKinds) {
  MetricsRegistry reg;
  reg.counter("svc.requests").add(2);
  reg.gauge("svc.depth").set(1.5);
  Histogram& h = reg.histogram("lat.ms", {1.0, 10.0});
  h.observe(0.5);
  h.observe(99.0);

  const std::string text = reg.prometheus_text();
  // Dots map to underscores under the micco_ prefix.
  EXPECT_NE(text.find("# TYPE micco_svc_requests counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("micco_svc_requests 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE micco_svc_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE micco_lat_ms histogram"), std::string::npos);
  // Cumulative buckets with the +Inf catch-all, plus _sum and _count.
  EXPECT_NE(text.find("micco_lat_ms_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("micco_lat_ms_bucket{le=\"10\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("micco_lat_ms_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("micco_lat_ms_count 2"), std::string::npos);
  EXPECT_NE(text.find("micco_lat_ms_sum 99.5"), std::string::npos);
}

// -- concurrency (suite name starts with "Parallel" so ci.sh runs it under
// TSan alongside the other threaded suites) --------------------------------

TEST(ParallelObsMetrics, ConcurrentHistogramRecordingKeepsExactCounts) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  MetricsRegistry reg;
  Histogram& h = reg.histogram("contended", {1.0, 10.0, 100.0});
  Counter& c = reg.counter("contended.count");

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, &c, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Deterministic per-thread values spanning all four buckets.
        h.observe(static_cast<double>((t * kPerThread + i) % 200));
        c.add();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads * kPerThread));
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t n : h.bucket_counts()) bucket_total += n;
  EXPECT_EQ(bucket_total, h.count());
}

TEST(ParallelObsMetrics, ConcurrentScratchFlushesMergeExactly) {
  constexpr int kThreads = 6;
  constexpr int kPerThread = 2000;
  const std::vector<double> bounds{1.0, 10.0, 100.0};
  Histogram shared(bounds);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&shared, &bounds, t] {
      HistogramScratch scratch(bounds);
      for (int i = 0; i < kPerThread; ++i) {
        scratch.observe(static_cast<double>((t + i) % 150));
        if (i % 500 == 499) scratch.flush_into(shared);
      }
      scratch.flush_into(shared);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(shared.count(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace micco::obs
