#include "core/tuner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace micco {
namespace {

TunerConfig tiny_tuner() {
  TunerConfig c;
  c.samples = 6;
  c.vector_sizes = {8, 16};
  c.tensor_extents = {64};
  c.repeated_rates = {0.5, 1.0};
  c.num_vectors = 4;
  c.batch = 1;
  c.num_devices = 2;
  c.max_bound = 1;  // 8 grid points per sample
  c.seed = 99;
  return c;
}

TEST(Tuner, ProducesRequestedSamples) {
  const TuningData data = generate_tuning_data(tiny_tuner());
  EXPECT_EQ(data.samples.size(), 6u);
  // Each sample swept the full (max_bound+1)^3 grid.
  EXPECT_EQ(data.records.size(), 6u * 8u);
}

TEST(Tuner, BestBoundsComeFromGrid) {
  const TunerConfig cfg = tiny_tuner();
  const TuningData data = generate_tuning_data(cfg);
  for (const TrainingSample& s : data.samples) {
    for (std::size_t b = 0; b < 3; ++b) {
      EXPECT_GE(s.best_bounds[b], 0);
      EXPECT_LE(s.best_bounds[b], cfg.max_bound);
    }
    EXPECT_GT(s.best_gflops, 0.0);
    EXPECT_GE(s.best_gflops, s.worst_gflops);
  }
}

TEST(Tuner, BestLabelMatchesBestRecord) {
  const TuningData data = generate_tuning_data(tiny_tuner());
  // For the first sample, the labelled best must equal the max over its
  // records.
  const TrainingSample& s = data.samples[0];
  double best = 0.0;
  for (std::size_t r = 0; r < 8; ++r) {
    best = std::max(best, data.records[r].gflops);
  }
  EXPECT_DOUBLE_EQ(s.best_gflops, best);
}

TEST(Tuner, FeaturesComeFromOnlineExtraction) {
  // Features must be what the online extractor would report: vector size
  // and extent are exact; bias and repeated rate are measured estimates.
  const TunerConfig cfg = tiny_tuner();
  const TuningData data = generate_tuning_data(cfg);
  for (const TrainingSample& s : data.samples) {
    EXPECT_TRUE(s.characteristics.vector_size == 8.0 ||
                s.characteristics.vector_size == 16.0);
    EXPECT_DOUBLE_EQ(s.characteristics.tensor_extent, 64.0);
    EXPECT_GE(s.characteristics.repeated_rate, 0.0);
    EXPECT_LE(s.characteristics.repeated_rate, 1.0);
    EXPECT_GE(s.characteristics.distribution_bias, 0.0);
    EXPECT_LE(s.characteristics.distribution_bias, 1.0);
  }
  // Across the corpus the measured repeated rates must spread (configs use
  // 0.5 and 1.0 requested rates).
  double lo = 1.0, hi = 0.0;
  for (const TrainingSample& s : data.samples) {
    lo = std::min(lo, s.characteristics.repeated_rate);
    hi = std::max(hi, s.characteristics.repeated_rate);
  }
  EXPECT_LT(lo, hi);
}

TEST(Tuner, DeterministicInSeed) {
  const TuningData a = generate_tuning_data(tiny_tuner());
  const TuningData b = generate_tuning_data(tiny_tuner());
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.records[i].gflops, b.records[i].gflops);
    EXPECT_EQ(a.records[i].bounds, b.records[i].bounds);
  }
}

TEST(Tuner, MeasureGflopsPositiveAndBoundsSensitive) {
  // A biased (Gaussian) repeat pattern concentrates the hot tensors, so
  // loosening the bounds must change the assignment and hence GFLOPS.
  SyntheticConfig synth;
  synth.num_vectors = 8;
  synth.vector_size = 16;
  synth.tensor_extent = 64;
  synth.batch = 1;
  synth.repeated_rate = 0.75;
  synth.distribution = DataDistribution::kGaussian;
  synth.seed = 3;
  const WorkloadStream stream = generate_synthetic(synth);
  ClusterConfig cluster;
  cluster.num_devices = 4;

  std::set<double> distinct;
  for (const ReuseBounds& b : bound_grid(2)) {
    const double gflops = measure_gflops(stream, b, cluster);
    EXPECT_GT(gflops, 0.0);
    distinct.insert(gflops);
  }
  EXPECT_GE(distinct.size(), 2u);  // bounds must matter somewhere on the grid
}

}  // namespace
}  // namespace micco
