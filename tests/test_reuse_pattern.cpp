#include "sched/reuse_pattern.hpp"

#include <gtest/gtest.h>

namespace micco {
namespace {

TensorDesc make_desc(TensorId id) { return TensorDesc{id, 2, 16, 1}; }

ContractionTask make_task(TensorId a, TensorId b, TensorId out) {
  ContractionTask t;
  t.a = make_desc(a);
  t.b = make_desc(b);
  t.out = make_desc(out);
  return t;
}

ClusterConfig two_devices() {
  ClusterConfig c;
  c.num_devices = 2;
  c.device_capacity_bytes = 1 << 20;
  return c;
}

// Fig. 4's four tensor-pair classes, reconstructed on a live simulator.
class ReusePatternTest : public ::testing::Test {
 protected:
  ReusePatternTest() : sim_(two_devices()) {
    // A1, A2 resident together on device 0 (TwoRepeatedSame example);
    // B1 on device 0, B2 on device 1 (TwoRepeatedDiff example);
    // C1 on device 0 (OneRepeated example).
    sim_.execute(make_task(/*A1=*/0, /*A2=*/1, 100), 0);
    sim_.execute(make_task(/*B1=*/2, /*C1=*/4, 101), 0);
    sim_.execute(make_task(/*B2=*/3, /*E=*/5, 102), 1);
  }
  ClusterSimulator sim_;
};

TEST_F(ReusePatternTest, TwoRepeatedSame) {
  EXPECT_EQ(classify_pair(make_task(0, 1, 200), sim_),
            LocalReusePattern::kTwoRepeatedSame);
}

TEST_F(ReusePatternTest, TwoRepeatedDiff) {
  EXPECT_EQ(classify_pair(make_task(2, 3, 200), sim_),
            LocalReusePattern::kTwoRepeatedDiff);
}

TEST_F(ReusePatternTest, OneRepeated) {
  EXPECT_EQ(classify_pair(make_task(4, /*new=*/77, 200), sim_),
            LocalReusePattern::kOneRepeated);
  EXPECT_EQ(classify_pair(make_task(/*new=*/77, 4, 200), sim_),
            LocalReusePattern::kOneRepeated);
}

TEST_F(ReusePatternTest, TwoNew) {
  EXPECT_EQ(classify_pair(make_task(77, 78, 200), sim_),
            LocalReusePattern::kTwoNew);
}

TEST_F(ReusePatternTest, ReplicatedTensorStillSame) {
  // Replicate tensor 0 onto device 1; the pair (0, 1) still has a common
  // holder (device 0), so it stays TwoRepeatedSame.
  sim_.execute(make_task(0, 99, 103), 1);
  EXPECT_EQ(classify_pair(make_task(0, 1, 200), sim_),
            LocalReusePattern::kTwoRepeatedSame);
}

TEST_F(ReusePatternTest, MappingClassesPerDevice) {
  // Pair (A1, A2): device 0 reuses both (mapping 1); device 1 none (4-7).
  EXPECT_EQ(classify_mapping(make_task(0, 1, 200), 0, sim_),
            MappingClass::kBothReused);
  EXPECT_EQ(classify_mapping(make_task(0, 1, 200), 1, sim_),
            MappingClass::kNoneReused);
  // Pair (B1, B2) on device 0: only operand A reused (mapping 2).
  EXPECT_EQ(classify_mapping(make_task(2, 3, 200), 0, sim_),
            MappingClass::kFirstReused);
  // ... and on device 1: only operand B reused (mapping 3).
  EXPECT_EQ(classify_mapping(make_task(2, 3, 200), 1, sim_),
            MappingClass::kSecondReused);
}

TEST_F(ReusePatternTest, FetchCountsMatchFigureCosts) {
  EXPECT_EQ(fetches_for(MappingClass::kBothReused), 0);
  EXPECT_EQ(fetches_for(MappingClass::kFirstReused), 1);
  EXPECT_EQ(fetches_for(MappingClass::kSecondReused), 1);
  EXPECT_EQ(fetches_for(MappingClass::kNoneReused), 2);
}

TEST_F(ReusePatternTest, BytesNeededSkipsResidentOperands) {
  const std::uint64_t tensor_bytes = make_desc(0).bytes();
  // (A1, A2) on device 0: only the output must be allocated.
  EXPECT_EQ(bytes_needed_on(make_task(0, 1, 200), 0, sim_), tensor_bytes);
  // (A1, A2) on device 1: both operands plus output.
  EXPECT_EQ(bytes_needed_on(make_task(0, 1, 200), 1, sim_), 3 * tensor_bytes);
  // (B1, B2) on device 0: operand B plus output.
  EXPECT_EQ(bytes_needed_on(make_task(2, 3, 200), 0, sim_), 2 * tensor_bytes);
}

TEST_F(ReusePatternTest, BytesNeededCountsSelfPairOnce) {
  const std::uint64_t tensor_bytes = make_desc(0).bytes();
  EXPECT_EQ(bytes_needed_on(make_task(77, 77, 200), 0, sim_),
            2 * tensor_bytes);  // one operand + output
}

TEST(ReusePatternNames, ToStringCoversAll) {
  EXPECT_STREQ(to_string(LocalReusePattern::kTwoRepeatedSame),
               "TwoRepeatedSame");
  EXPECT_STREQ(to_string(LocalReusePattern::kTwoRepeatedDiff),
               "TwoRepeatedDiff");
  EXPECT_STREQ(to_string(LocalReusePattern::kOneRepeated), "OneRepeated");
  EXPECT_STREQ(to_string(LocalReusePattern::kTwoNew), "TwoNew");
}

}  // namespace
}  // namespace micco
