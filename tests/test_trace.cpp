#include "gpusim/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "gpusim/cluster.hpp"

namespace micco {
namespace {

TensorDesc make_desc(TensorId id) { return TensorDesc{id, 2, 16, 1}; }

ContractionTask make_task(TensorId a, TensorId b, TensorId out) {
  ContractionTask t;
  t.a = make_desc(a);
  t.b = make_desc(b);
  t.out = make_desc(out);
  return t;
}

ClusterConfig small_cluster(std::uint64_t capacity = 1u << 20) {
  ClusterConfig c;
  c.num_devices = 2;
  c.device_capacity_bytes = capacity;
  return c;
}

TEST(Trace, RecordsFetchAllocAndKernelPerTask) {
  TraceRecorder trace;
  ClusterSimulator sim(small_cluster());
  sim.set_trace(&trace);
  sim.execute(make_task(0, 1, 2), 0);

  EXPECT_EQ(trace.summarize(TraceEventKind::kFetchH2D).count, 2u);
  EXPECT_EQ(trace.summarize(TraceEventKind::kOutputAlloc).count, 1u);
  EXPECT_EQ(trace.summarize(TraceEventKind::kKernel).count, 1u);
  EXPECT_EQ(trace.summarize(TraceEventKind::kEviction).count, 0u);
}

TEST(Trace, ReuseHitsEmitNoFetchEvents) {
  TraceRecorder trace;
  ClusterSimulator sim(small_cluster());
  sim.set_trace(&trace);
  sim.execute(make_task(0, 1, 2), 0);
  trace.clear();
  sim.execute(make_task(0, 1, 3), 0);
  EXPECT_EQ(trace.summarize(TraceEventKind::kFetchH2D).count, 0u);
  EXPECT_EQ(trace.summarize(TraceEventKind::kKernel).count, 1u);
}

TEST(Trace, EvictionEventsUnderPressure) {
  const std::uint64_t tensor_bytes = make_desc(0).bytes();
  TraceRecorder trace;
  ClusterConfig cfg = small_cluster(3 * tensor_bytes);
  cfg.num_devices = 1;
  ClusterSimulator sim(cfg);
  sim.set_trace(&trace);
  sim.execute(make_task(0, 1, 2), 0);
  sim.execute(make_task(3, 4, 5), 0);
  EXPECT_GT(trace.summarize(TraceEventKind::kEviction).count, 0u);
}

TEST(Trace, EventsOnCorrectDeviceTrack) {
  TraceRecorder trace;
  ClusterSimulator sim(small_cluster());
  sim.set_trace(&trace);
  sim.execute(make_task(0, 1, 2), 1);
  for (const TraceEvent& e : trace.events()) {
    EXPECT_EQ(e.device, 1);
  }
}

TEST(Trace, TimelineIsContiguousWithinTask) {
  TraceRecorder trace;
  ClusterSimulator sim(small_cluster());
  sim.set_trace(&trace);
  sim.execute(make_task(0, 1, 2), 0);

  // Events run back-to-back from t=0 to the device's busy time.
  double cursor = 0.0;
  for (const TraceEvent& e : trace.events()) {
    EXPECT_NEAR(e.start_s, cursor, 1e-12);
    cursor += e.duration_s;
  }
  EXPECT_NEAR(cursor, sim.busy_time(0), 1e-12);
}

TEST(Trace, BarrierEmitsIdleGaps) {
  TraceRecorder trace;
  ClusterSimulator sim(small_cluster());
  sim.set_trace(&trace);
  sim.execute(make_task(0, 1, 2), 0);  // device 1 stays idle
  sim.barrier();
  const TraceSummary idle = trace.summarize(TraceEventKind::kBarrier);
  EXPECT_EQ(idle.count, 1u);
  EXPECT_NEAR(idle.total_s, sim.metrics().barrier_idle_s, 1e-12);
}

TEST(Trace, WindowFiltersByInterval) {
  TraceRecorder trace;
  trace.record(TraceEvent{TraceEventKind::kKernel, 0, 1, 0.0, 1.0});
  trace.record(TraceEvent{TraceEventKind::kKernel, 0, 2, 2.0, 1.0});
  EXPECT_EQ(trace.window(0.5, 1.5).size(), 1u);
  EXPECT_EQ(trace.window(0.0, 5.0).size(), 2u);
  EXPECT_EQ(trace.window(1.2, 1.8).size(), 0u);
}

TEST(Trace, ChromeJsonIsWellFormedish) {
  TraceRecorder trace;
  ClusterSimulator sim(small_cluster());
  sim.set_trace(&trace);
  sim.execute(make_task(0, 1, 2), 0);
  sim.barrier();

  std::ostringstream os;
  trace.write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"kernel\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Balanced braces (cheap structural check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Trace, DetachStopsRecording) {
  TraceRecorder trace;
  ClusterSimulator sim(small_cluster());
  sim.set_trace(&trace);
  sim.execute(make_task(0, 1, 2), 0);
  const std::size_t before = trace.size();
  sim.set_trace(nullptr);
  sim.execute(make_task(3, 4, 5), 0);
  EXPECT_EQ(trace.size(), before);
}

TEST(Trace, TracingDoesNotPerturbTiming) {
  ClusterSimulator traced_sim(small_cluster());
  TraceRecorder trace;
  traced_sim.set_trace(&trace);
  ClusterSimulator plain_sim(small_cluster());
  for (TensorId i = 0; i < 12; i += 3) {
    traced_sim.execute(make_task(i, i + 1, i + 2), 0);
    plain_sim.execute(make_task(i, i + 1, i + 2), 0);
  }
  EXPECT_DOUBLE_EQ(traced_sim.busy_time(0), plain_sim.busy_time(0));
}

TEST(Trace, KindNamesAreStable) {
  EXPECT_STREQ(to_string(TraceEventKind::kFetchH2D), "fetch_h2d");
  EXPECT_STREQ(to_string(TraceEventKind::kKernel), "kernel");
  EXPECT_STREQ(to_string(TraceEventKind::kBarrier), "barrier");
  EXPECT_STREQ(to_string(EvictionCause::kOperandFetch), "operand_fetch");
  EXPECT_STREQ(to_string(EvictionCause::kOutputAlloc), "output_alloc");
}

TEST(Trace, EmptyRecorderSummarizesAndWindowsToNothing) {
  const TraceRecorder trace;
  const TraceSummary s = trace.summarize(TraceEventKind::kKernel);
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.total_s, 0.0);
  EXPECT_TRUE(trace.window(0.0, 100.0).empty());

  std::ostringstream os;
  trace.write_chrome_json(os);
  EXPECT_EQ(os.str(), "{\"traceEvents\":[]}\n");
}

TEST(Trace, ZeroLengthWindowMatchesNoHalfOpenInterval) {
  TraceRecorder trace;
  trace.record(TraceEvent{TraceEventKind::kKernel, 0, 1, 0.0, 1.0});
  // [t, t) is empty by the half-open convention, even inside an event.
  EXPECT_TRUE(trace.window(0.5, 0.5).empty());
  EXPECT_TRUE(trace.window(0.0, 0.0).empty());
}

TEST(Trace, ChromeJsonCarriesArgsForPayloadEvents) {
  TraceRecorder trace;
  ClusterSimulator sim(small_cluster());
  sim.set_trace(&trace);
  sim.execute(make_task(0, 1, 2), 0);

  std::ostringstream os;
  trace.write_chrome_json(os);
  const std::string json = os.str();
  // Fetches carry the tensor id and the bytes moved.
  EXPECT_NE(json.find("\"args\":{\"tensor\":0,\"bytes\":"), std::string::npos);
  // No eviction happened, so no cause is attached anywhere.
  EXPECT_EQ(json.find("\"cause\""), std::string::npos);
}

TEST(Trace, ChromeJsonNamesEvictionCause) {
  const std::uint64_t tensor_bytes = make_desc(0).bytes();
  TraceRecorder trace;
  ClusterConfig cfg = small_cluster(3 * tensor_bytes);
  cfg.num_devices = 1;
  ClusterSimulator sim(cfg);
  sim.set_trace(&trace);
  sim.execute(make_task(0, 1, 2), 0);
  sim.execute(make_task(3, 4, 5), 0);

  bool saw_cause = false;
  for (const TraceEvent& e : trace.events()) {
    if (e.kind != TraceEventKind::kEviction) continue;
    EXPECT_NE(e.cause, EvictionCause::kNone);
    EXPECT_GT(e.bytes, 0u);
    saw_cause = true;
  }
  ASSERT_TRUE(saw_cause);

  std::ostringstream os;
  trace.write_chrome_json(os);
  EXPECT_NE(os.str().find("\"cause\":\""), std::string::npos);
}

TEST(Trace, BarrierEventsCarryNoArgs) {
  TraceRecorder trace;
  ClusterSimulator sim(small_cluster());
  sim.set_trace(&trace);
  sim.execute(make_task(0, 1, 2), 0);
  sim.barrier();

  std::ostringstream os;
  trace.write_chrome_json(os);
  const std::string json = os.str();
  // The barrier line (device 1 idle) has no tensor, hence no args block.
  const std::size_t barrier_pos = json.find("\"name\":\"barrier\"");
  ASSERT_NE(barrier_pos, std::string::npos);
  const std::size_t args_after = json.find("\"args\"", barrier_pos);
  const std::size_t close_after = json.find("}", barrier_pos);
  EXPECT_TRUE(args_after == std::string::npos || args_after > close_after);
}

}  // namespace
}  // namespace micco
