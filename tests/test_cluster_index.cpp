// ClusterIndex unit tests: residency deltas (holder order, bitmask,
// epochs), wide clusters past the 64-bit inline mask word, the sparse id
// spill, and — via a live ClusterSimulator — the contract that the
// per-device mirrors and the residency sets always agree with the virtual
// ClusterView getters at every scheduler observation point (after execute,
// barrier, failure and discard).
#include "gpusim/cluster_index.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "gpusim/cluster.hpp"
#include "workload/task.hpp"

namespace micco {
namespace {

TensorDesc desc(TensorId id, std::int64_t extent = 16) {
  return TensorDesc{id, 2, extent, 1};
}

ContractionTask task(TensorId a, TensorId b, TensorId out,
                     std::int64_t extent = 16) {
  return ContractionTask{desc(a, extent), desc(b, extent), desc(out, extent)};
}

// ------------------------------------------------------------ residency core

TEST(ClusterIndex, HoldersKeepInsertionOrder) {
  ClusterIndex index(8);
  index.place(5, 3);
  index.place(5, 0);
  index.place(5, 6);
  EXPECT_EQ(index.holders(5), (std::vector<DeviceId>{3, 0, 6}));
  EXPECT_TRUE(index.holds(3, 5));
  EXPECT_TRUE(index.holds(0, 5));
  EXPECT_TRUE(index.holds(6, 5));
  EXPECT_FALSE(index.holds(1, 5));

  // Removing the middle holder preserves the relative order of the rest.
  index.remove(5, 0);
  EXPECT_EQ(index.holders(5), (std::vector<DeviceId>{3, 6}));
  EXPECT_FALSE(index.holds(0, 5));
}

TEST(ClusterIndex, NeverPlacedTensorHasEmptyState) {
  ClusterIndex index(4);
  EXPECT_EQ(index.find(42), nullptr);
  EXPECT_TRUE(index.holders(42).empty());
  EXPECT_FALSE(index.resident_anywhere(42));
  EXPECT_FALSE(index.holds(0, 42));
  EXPECT_EQ(index.tensor_epoch(42), 0u);
}

TEST(ClusterIndex, EpochsAreMonotonicAndNeverReset) {
  ClusterIndex index(4);
  index.place(7, 1);
  const std::uint64_t after_place = index.tensor_epoch(7);
  EXPECT_GT(after_place, 0u);

  index.remove(7, 1);
  const std::uint64_t after_remove = index.tensor_epoch(7);
  EXPECT_GT(after_remove, after_place);

  // The entry survives the last removal with an empty holder list, so a
  // re-placement continues the epoch sequence instead of restarting it —
  // a cache keyed on (id, epoch) must never see a recycled value.
  EXPECT_NE(index.find(7), nullptr);
  EXPECT_FALSE(index.resident_anywhere(7));
  index.place(7, 2);
  EXPECT_GT(index.tensor_epoch(7), after_remove);
}

TEST(ClusterIndex, GlobalEpochCountsEveryResidencyChange) {
  ClusterIndex index(4);
  EXPECT_EQ(index.epoch_bumps(), 0u);
  index.place(1, 0);
  index.place(2, 0);
  index.place(1, 3);
  index.remove(1, 0);
  EXPECT_EQ(index.epoch_bumps(), 4u);
  // Interleaved tensors stamp distinct epochs from the shared counter.
  EXPECT_EQ(index.tensor_epoch(1), 4u);
  EXPECT_EQ(index.tensor_epoch(2), 2u);
}

TEST(ClusterIndex, SparseSpillHandlesHugeIds) {
  ClusterIndex index(4);
  const TensorId huge = (1ULL << 20) + 17;  // past the dense table
  index.place(huge, 2);
  EXPECT_TRUE(index.holds(2, huge));
  EXPECT_EQ(index.holders(huge), (std::vector<DeviceId>{2}));
  EXPECT_GT(index.tensor_epoch(huge), 0u);
  index.remove(huge, 2);
  EXPECT_FALSE(index.resident_anywhere(huge));
  EXPECT_NE(index.find(huge), nullptr);
}

// ---------------------------------------------------------- wide clusters

TEST(ClusterIndex, MaskExtendsPast64Devices) {
  ClusterIndex index(70);
  index.place(9, 63);   // last bit of the inline word
  index.place(9, 64);   // first bit of the first spill word
  index.place(9, 69);
  EXPECT_TRUE(index.holds(63, 9));
  EXPECT_TRUE(index.holds(64, 9));
  EXPECT_TRUE(index.holds(69, 9));
  EXPECT_FALSE(index.holds(65, 9));
  EXPECT_EQ(index.holders(9), (std::vector<DeviceId>{63, 64, 69}));

  index.remove(9, 64);
  EXPECT_FALSE(index.holds(64, 9));
  EXPECT_TRUE(index.holds(63, 9));
  EXPECT_TRUE(index.holds(69, 9));
}

TEST(ClusterIndex, AliveMaskSpansMultipleWordsAscending) {
  ClusterIndex index(130);
  EXPECT_EQ(index.num_alive(), 130);
  ASSERT_EQ(index.alive_mask().size(), 3u);  // ceil(130 / 64)
  for (DeviceId dev = 0; dev < 130; ++dev) EXPECT_TRUE(index.alive(dev));
  // The last word only carries bits for the two devices past 128.
  EXPECT_EQ(index.alive_mask()[2], 0x3ULL);

  index.set_alive(64, false);
  index.set_alive(129, false);
  EXPECT_EQ(index.num_alive(), 128);
  EXPECT_FALSE(index.alive(64));
  EXPECT_FALSE(index.alive(129));
  EXPECT_TRUE(index.alive(63));
  // Killing a dead device twice must not double-decrement.
  index.set_alive(64, false);
  EXPECT_EQ(index.num_alive(), 128);

  // Ascending scan over the mask words enumerates exactly the alive set —
  // this is the enumeration order of the scheduler's tier II' / fallback.
  std::vector<DeviceId> scanned;
  const std::vector<std::uint64_t>& words = index.alive_mask();
  for (std::size_t w = 0; w < words.size(); ++w) {
    for (std::size_t bit = 0; bit < 64; ++bit) {
      if (((words[w] >> bit) & 1ULL) != 0) {
        scanned.push_back(static_cast<DeviceId>(w * 64 + bit));
      }
    }
  }
  EXPECT_EQ(scanned.size(), 128u);
  EXPECT_FALSE(std::binary_search(scanned.begin(), scanned.end(), 64));
  EXPECT_TRUE(std::is_sorted(scanned.begin(), scanned.end()));

  // Revival flips the bit back on and restores the count.
  index.set_alive(64, true);
  EXPECT_EQ(index.num_alive(), 129);
  EXPECT_TRUE(index.alive(64));
}

// ------------------------------------------------ mirrors track the cluster

/// The index the simulator maintains must agree with the virtual getters at
/// every point the scheduler can observe the cluster.
void expect_index_consistent(const ClusterSimulator& sim,
                             const std::vector<TensorId>& tensors) {
  const ClusterIndex* index = sim.cluster_index();
  ASSERT_NE(index, nullptr);
  for (DeviceId dev = 0; dev < sim.num_devices(); ++dev) {
    EXPECT_EQ(index->memory_used(dev), sim.memory_used(dev)) << "dev " << dev;
    EXPECT_EQ(index->memory_capacity(dev), sim.memory_capacity(dev));
    EXPECT_EQ(index->alive(dev), sim.device_alive(dev)) << "dev " << dev;
    EXPECT_EQ(index->busy(dev), sim.busy_time(dev)) << "dev " << dev;
  }
  int alive = 0;
  for (DeviceId dev = 0; dev < sim.num_devices(); ++dev) {
    if (sim.device_alive(dev)) ++alive;
  }
  EXPECT_EQ(index->num_alive(), alive);
  for (const TensorId id : tensors) {
    EXPECT_EQ(index->holders(id), sim.devices_holding(id)) << "tensor " << id;
    for (DeviceId dev = 0; dev < sim.num_devices(); ++dev) {
      EXPECT_EQ(index->holds(dev, id), sim.resident_on(dev, id))
          << "tensor " << id << " dev " << dev;
    }
  }
}

TEST(ClusterIndexMirror, TracksExecuteBarrierFailureAndDiscard) {
  ClusterConfig config;
  config.num_devices = 3;
  config.device_capacity_bytes = 1ULL << 20;
  ClusterSimulator sim(config);
  const std::vector<TensorId> ids{1, 2, 3, 4, 5, 6};

  expect_index_consistent(sim, ids);

  ASSERT_TRUE(sim.execute(task(1, 2, 3), 0).ok());
  expect_index_consistent(sim, ids);
  ASSERT_TRUE(sim.execute(task(1, 4, 5), 1).ok());  // replica of 1 on dev 1
  expect_index_consistent(sim, ids);

  sim.barrier();
  expect_index_consistent(sim, ids);

  sim.fail_device(1, 0.0);
  expect_index_consistent(sim, ids);
  EXPECT_FALSE(sim.cluster_index()->alive(1));

  sim.discard(1);
  expect_index_consistent(sim, ids);
  EXPECT_FALSE(sim.cluster_index()->resident_anywhere(1));
}

TEST(ClusterIndexMirror, FailureBumpsEpochOfEveryResidentTensor) {
  ClusterConfig config;
  config.num_devices = 2;
  ClusterSimulator sim(config);
  ASSERT_TRUE(sim.execute(task(10, 11, 12), 0).ok());

  const ClusterIndex* index = sim.cluster_index();
  const std::uint64_t epoch_a = index->tensor_epoch(10);
  const std::uint64_t epoch_out = index->tensor_epoch(12);
  ASSERT_GT(epoch_a, 0u);

  sim.fail_device(0, 0.0);
  // Every tensor the dead device held changed residency: epochs must move,
  // which is what invalidates any cached classification involving them.
  EXPECT_GT(index->tensor_epoch(10), epoch_a);
  EXPECT_GT(index->tensor_epoch(12), epoch_out);
}

}  // namespace
}  // namespace micco
