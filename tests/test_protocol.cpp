// Unit tests for the daemon wire protocol: frame encoding/splitting,
// request parsing, and the structured-error paths that keep external bytes
// from ever aborting the server.
#include <gtest/gtest.h>

#include <string>

#include "obs/json.hpp"
#include "service/protocol.hpp"

namespace micco::service {
namespace {

// ------------------------------------------------------------- FrameReader

TEST(Protocol, ReassemblesFramesSplitAcrossFeeds) {
  FrameReader reader;
  reader.feed("{\"a\"");
  EXPECT_FALSE(reader.next_frame().has_value());
  reader.feed(":1}\n{\"b\":2}\n{\"c\"");
  ASSERT_EQ(reader.next_frame().value(), "{\"a\":1}");
  ASSERT_EQ(reader.next_frame().value(), "{\"b\":2}");
  EXPECT_FALSE(reader.next_frame().has_value());
  reader.feed(":3}\n");
  ASSERT_EQ(reader.next_frame().value(), "{\"c\":3}");
}

TEST(Protocol, ManyFramesInOneFeed) {
  FrameReader reader;
  std::string bytes;
  for (int i = 0; i < 50; ++i) {
    bytes += "{\"i\":" + std::to_string(i) + "}\n";
  }
  reader.feed(bytes);
  for (int i = 0; i < 50; ++i) {
    const auto frame = reader.next_frame();
    ASSERT_TRUE(frame.has_value()) << i;
    EXPECT_EQ(*frame, "{\"i\":" + std::to_string(i) + "}");
  }
  EXPECT_FALSE(reader.next_frame().has_value());
  EXPECT_EQ(reader.buffered_bytes(), 0u);
}

TEST(Protocol, OversizedFrameIsDroppedAndReportedOnce) {
  FrameReader reader(/*max_frame_bytes=*/16);
  reader.feed(std::string(100, 'x'));  // way past the limit, no newline yet
  bool oversized = false;
  EXPECT_FALSE(reader.next_frame(&oversized).has_value());
  EXPECT_TRUE(oversized);
  // Reported exactly once.
  oversized = false;
  EXPECT_FALSE(reader.next_frame(&oversized).has_value());
  EXPECT_FALSE(oversized);
  // The rest of the oversized line is discarded; the next line survives.
  reader.feed("yyy\n{\"ok\":1}\n");
  oversized = false;
  const auto frame = reader.next_frame(&oversized);
  EXPECT_FALSE(oversized);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(*frame, "{\"ok\":1}");
}

TEST(Protocol, OversizedDetectionWorksFedByteByByte) {
  FrameReader reader(/*max_frame_bytes=*/8);
  for (int i = 0; i < 64; ++i) reader.feed("z");
  reader.feed("\n");
  bool oversized = false;
  EXPECT_FALSE(reader.next_frame(&oversized).has_value());
  EXPECT_TRUE(oversized);
  // Buffer does not grow while discarding.
  EXPECT_LE(reader.buffered_bytes(), 8u);
}

TEST(Protocol, FrameAtExactLimitPasses) {
  // The limit counts payload bytes (the '\n' terminator is free): exactly
  // max_frame_bytes passes, one more byte trips the oversize path.
  FrameReader reader(/*max_frame_bytes=*/8);
  reader.feed("12345678\n");
  bool oversized = false;
  const auto frame = reader.next_frame(&oversized);
  EXPECT_FALSE(oversized);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(*frame, "12345678");

  reader.feed("123456789\n");
  EXPECT_FALSE(reader.next_frame(&oversized).has_value());
  EXPECT_TRUE(oversized);
}

// ------------------------------------------------------- encode / parse

TEST(Protocol, EncodeFrameIsSingleLine) {
  obs::JsonValue doc =
      make_submit_request("ten\nant", "job\x01name", "line1\nline2\n");
  const std::string frame = encode_frame(doc);
  ASSERT_FALSE(frame.empty());
  EXPECT_EQ(frame.back(), '\n');
  // The only newline is the terminator, even with hostile embedded bytes.
  EXPECT_EQ(frame.find('\n'), frame.size() - 1);

  // And it parses back to the same request.
  FrameReader reader;
  reader.feed(frame);
  const auto line = reader.next_frame();
  ASSERT_TRUE(line.has_value());
  const auto parsed = obs::parse_json(*line);
  ASSERT_TRUE(parsed.has_value());
  obs::JsonValue error_reply;
  const auto request = parse_request(*parsed, &error_reply);
  ASSERT_TRUE(request.has_value()) << error_reply.dump();
  EXPECT_EQ(request->tenant, "ten\nant");
  EXPECT_EQ(request->job_name, "job\x01name");
  EXPECT_EQ(request->workload_text, "line1\nline2\n");
}

TEST(Protocol, ParseRejectsUnknownTypeWithStructuredError) {
  obs::JsonValue doc = obs::JsonValue::object();
  doc.set("v", kProtocolVersion);
  doc.set("type", "frobnicate");
  obs::JsonValue error_reply;
  EXPECT_FALSE(parse_request(doc, &error_reply).has_value());
  EXPECT_FALSE(error_reply.at("ok").as_bool());
  EXPECT_EQ(error_reply.at("code").as_string(), error_code::kUnknownType);
}

TEST(Protocol, ParseRejectsWrongVersion) {
  obs::JsonValue doc = obs::JsonValue::object();
  doc.set("v", kProtocolVersion + 1);
  doc.set("type", "stats");
  obs::JsonValue error_reply;
  EXPECT_FALSE(parse_request(doc, &error_reply).has_value());
  EXPECT_EQ(error_reply.at("code").as_string(), error_code::kBadVersion);
}

TEST(Protocol, ParseRejectsMissingFields) {
  // submit without a workload string.
  obs::JsonValue submit = obs::JsonValue::object();
  submit.set("v", kProtocolVersion);
  submit.set("type", "submit");
  obs::JsonValue error_reply;
  EXPECT_FALSE(parse_request(submit, &error_reply).has_value());
  EXPECT_EQ(error_reply.at("code").as_string(), error_code::kBadRequest);

  // status without a job id.
  obs::JsonValue status = obs::JsonValue::object();
  status.set("v", kProtocolVersion);
  status.set("type", "status");
  EXPECT_FALSE(parse_request(status, &error_reply).has_value());
  EXPECT_EQ(error_reply.at("code").as_string(), error_code::kBadRequest);

  // status with a negative job id.
  status.set("job_id", -3);
  EXPECT_FALSE(parse_request(status, &error_reply).has_value());
  EXPECT_EQ(error_reply.at("code").as_string(), error_code::kBadRequest);
}

TEST(Protocol, ParseDefaultsSubmitTenant) {
  obs::JsonValue doc = obs::JsonValue::object();
  doc.set("v", kProtocolVersion);
  doc.set("type", "submit");
  doc.set("workload", "micco-workload v1\n");
  obs::JsonValue error_reply;
  const auto request = parse_request(doc, &error_reply);
  ASSERT_TRUE(request.has_value()) << error_reply.dump();
  EXPECT_EQ(request->tenant, "default");
}

TEST(Protocol, MessageTypeNamesRoundTrip) {
  for (const MessageType type :
       {MessageType::kSubmit, MessageType::kStatus, MessageType::kResult,
        MessageType::kDrain, MessageType::kShutdown, MessageType::kStats,
        MessageType::kMetrics}) {
    const auto parsed = parse_message_type(to_string(type));
    ASSERT_TRUE(parsed.has_value()) << to_string(type);
    EXPECT_EQ(*parsed, type);
  }
  EXPECT_FALSE(parse_message_type("nope").has_value());
}

TEST(Protocol, MetricsRequestRoundTrips) {
  const obs::JsonValue doc = make_plain_request(MessageType::kMetrics);
  obs::JsonValue error_reply;
  const auto request = parse_request(doc, &error_reply);
  ASSERT_TRUE(request.has_value()) << error_reply.dump();
  EXPECT_EQ(request->type, MessageType::kMetrics);
}

TEST(Protocol, SubmitCarriesOptionalTraceId) {
  const obs::JsonValue doc =
      make_submit_request("alice", "job", "micco-workload v1\n", "t-abc-0");
  EXPECT_EQ(doc.at("trace").as_string(), "t-abc-0");
  obs::JsonValue error_reply;
  const auto request = parse_request(doc, &error_reply);
  ASSERT_TRUE(request.has_value()) << error_reply.dump();
  EXPECT_EQ(request->trace_id, "t-abc-0");
}

TEST(Protocol, SubmitWithoutTraceParsesToEmptyId) {
  const obs::JsonValue doc =
      make_submit_request("alice", "job", "micco-workload v1\n");
  EXPECT_EQ(doc.find("trace"), nullptr);  // omitted, not empty
  obs::JsonValue error_reply;
  const auto request = parse_request(doc, &error_reply);
  ASSERT_TRUE(request.has_value()) << error_reply.dump();
  EXPECT_TRUE(request->trace_id.empty());
}

TEST(Protocol, SubmitRejectsNonStringTrace) {
  obs::JsonValue doc =
      make_submit_request("alice", "job", "micco-workload v1\n");
  doc.set("trace", 42);
  obs::JsonValue error_reply;
  EXPECT_FALSE(parse_request(doc, &error_reply).has_value());
  EXPECT_EQ(error_reply.at("code").as_string(), "bad_request");
}

}  // namespace
}  // namespace micco::service
