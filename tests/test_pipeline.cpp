#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "workload/synthetic.hpp"

namespace micco {
namespace {

SyntheticConfig small_workload() {
  SyntheticConfig c;
  c.num_vectors = 5;
  c.vector_size = 16;
  c.tensor_extent = 64;
  c.batch = 2;
  c.repeated_rate = 0.5;
  c.seed = 7;
  return c;
}

ClusterConfig small_cluster(int devices = 4) {
  ClusterConfig c;
  c.num_devices = devices;
  c.device_capacity_bytes = 256u << 20;
  return c;
}

TEST(Pipeline, RunsAllTasks) {
  const WorkloadStream stream = generate_synthetic(small_workload());
  MiccoScheduler sched;
  const RunResult result = run_stream(stream, sched, small_cluster());
  EXPECT_EQ(result.metrics.total_flops, stream.total_flops());
  EXPECT_GT(result.metrics.makespan_s, 0.0);
  EXPECT_GT(result.metrics.gflops(), 0.0);
  EXPECT_EQ(result.scheduler_name, "MICCO");
}

TEST(Pipeline, RecordsPerVectorCharacteristics) {
  const WorkloadStream stream = generate_synthetic(small_workload());
  MiccoScheduler sched;
  const RunResult result = run_stream(stream, sched, small_cluster());
  ASSERT_EQ(result.per_vector_characteristics.size(), stream.vectors.size());
  // First vector is all fresh -> zero repeated rate; later vectors see
  // residency from earlier ones.
  EXPECT_DOUBLE_EQ(result.per_vector_characteristics[0].repeated_rate, 0.0);
  EXPECT_GT(result.per_vector_characteristics[2].repeated_rate, 0.0);
}

TEST(Pipeline, SchedulingOverheadMeasuredAndSmall) {
  const WorkloadStream stream = generate_synthetic(small_workload());
  MiccoScheduler sched;
  const RunResult result = run_stream(stream, sched, small_cluster());
  EXPECT_GE(result.scheduling_overhead_ms, 0.0);
  // Wall-clock scheduling for 40 pairs must be far under a second.
  EXPECT_LT(result.scheduling_overhead_ms, 1000.0);
}

TEST(Pipeline, BoundsProviderFeedsMiccoScheduler) {
  // A provider returning generous bounds must change behaviour vs naive on
  // a reuse-heavy workload.
  SyntheticConfig cfg = small_workload();
  cfg.repeated_rate = 1.0;
  cfg.num_vectors = 8;
  const WorkloadStream stream = generate_synthetic(cfg);

  MiccoScheduler naive_sched;
  const RunResult naive = run_stream(stream, naive_sched, small_cluster());

  MiccoScheduler tuned_sched;
  FixedBounds generous{ReuseBounds{2, 2, 2}};
  const RunResult tuned =
      run_stream(stream, tuned_sched, small_cluster(), &generous);

  EXPECT_NE(naive.metrics.reused_operands, tuned.metrics.reused_operands);
}

TEST(Pipeline, BoundsProviderIgnoredForBaselines) {
  const WorkloadStream stream = generate_synthetic(small_workload());
  GrouteScheduler groute;
  FixedBounds bounds{ReuseBounds{2, 2, 2}};
  // Must run without attempting to cast Groute to MiccoScheduler.
  const RunResult result =
      run_stream(stream, groute, small_cluster(), &bounds);
  EXPECT_EQ(result.metrics.total_flops, stream.total_flops());
}

TEST(Pipeline, DeterministicMetricsAcrossRuns) {
  const WorkloadStream stream = generate_synthetic(small_workload());
  MiccoScheduler s1, s2;
  const RunResult a = run_stream(stream, s1, small_cluster());
  const RunResult b = run_stream(stream, s2, small_cluster());
  EXPECT_DOUBLE_EQ(a.metrics.makespan_s, b.metrics.makespan_s);
  EXPECT_EQ(a.metrics.h2d_bytes, b.metrics.h2d_bytes);
  EXPECT_EQ(a.metrics.evictions, b.metrics.evictions);
}

TEST(Pipeline, EmptyVectorsAreSkipped) {
  WorkloadStream stream;
  stream.vectors.emplace_back();  // empty vector
  MiccoScheduler sched;
  const RunResult result = run_stream(stream, sched, small_cluster());
  EXPECT_EQ(result.metrics.total_flops, 0u);
  EXPECT_TRUE(result.per_vector_characteristics.empty());
}

TEST(CapacitySizing, RateScalesInversely) {
  const WorkloadStream stream = generate_synthetic(small_workload());
  const std::uint64_t at_100 =
      capacity_for_oversubscription(stream, 4, 1.0, 1);
  const std::uint64_t at_200 =
      capacity_for_oversubscription(stream, 4, 2.0, 1);
  EXPECT_NEAR(static_cast<double>(at_100) / static_cast<double>(at_200), 2.0,
              0.01);
}

TEST(CapacitySizing, FlooredAtMinimum) {
  const WorkloadStream stream = generate_synthetic(small_workload());
  const std::uint64_t huge_floor = 1ull << 40;
  EXPECT_EQ(capacity_for_oversubscription(stream, 4, 2.0, huge_floor),
            huge_floor);
}

TEST(Comparison, RunsRequestedSchedulers) {
  const WorkloadStream stream = generate_synthetic(small_workload());
  const auto entries = compare_schedulers(
      stream, small_cluster(),
      {SchedulerKind::kGroute, SchedulerKind::kMiccoNaive});
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].name, "Groute");
  EXPECT_EQ(entries[1].name, "MICCO-naive");
  for (const ComparisonEntry& e : entries) {
    EXPECT_EQ(e.result.metrics.total_flops, stream.total_flops());
  }
}

TEST(Comparison, OptimalSkippedWithoutProvider) {
  const WorkloadStream stream = generate_synthetic(small_workload());
  const auto entries = compare_schedulers(
      stream, small_cluster(),
      {SchedulerKind::kGroute, SchedulerKind::kMiccoOptimal});
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].kind, SchedulerKind::kGroute);
}

TEST(Comparison, OptimalIncludedWithProvider) {
  const WorkloadStream stream = generate_synthetic(small_workload());
  FixedBounds bounds{ReuseBounds{1, 1, 1}};
  const auto entries = compare_schedulers(
      stream, small_cluster(),
      {SchedulerKind::kGroute, SchedulerKind::kMiccoOptimal}, &bounds);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[1].name, "MICCO-optimal");
}

TEST(Comparison, SpeedupOfIsRatioOfMakespans) {
  const WorkloadStream stream = generate_synthetic(small_workload());
  const auto entries = compare_schedulers(
      stream, small_cluster(),
      {SchedulerKind::kGroute, SchedulerKind::kMiccoNaive});
  const double s = speedup_of(entries, SchedulerKind::kMiccoNaive,
                              SchedulerKind::kGroute);
  EXPECT_NEAR(s,
              entries[0].result.metrics.makespan_s /
                  entries[1].result.metrics.makespan_s,
              1e-12);
}

TEST(Comparison, SchedulerKindNames) {
  EXPECT_STREQ(to_string(SchedulerKind::kGroute), "Groute");
  EXPECT_STREQ(to_string(SchedulerKind::kMiccoNaive), "MICCO-naive");
  EXPECT_STREQ(to_string(SchedulerKind::kMiccoOptimal), "MICCO-optimal");
  EXPECT_STREQ(to_string(SchedulerKind::kRoundRobin), "RoundRobin");
}

TEST(Comparison, MakeSchedulerProducesCorrectTypes) {
  EXPECT_EQ(make_scheduler(SchedulerKind::kGroute)->name(), "Groute");
  EXPECT_EQ(make_scheduler(SchedulerKind::kMiccoNaive)->name(), "MICCO");
  EXPECT_EQ(make_scheduler(SchedulerKind::kDataReuseOnly)->name(),
            "DataReuseOnly");
}

}  // namespace
}  // namespace micco
