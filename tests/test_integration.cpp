// Cross-module integration tests: the headline behaviours the paper's
// evaluation rests on, checked end-to-end on small workloads.
#include <gtest/gtest.h>

#include "core/bounds_model.hpp"
#include "core/experiment.hpp"
#include "core/tuner.hpp"
#include "redstar/correlator.hpp"
#include "workload/synthetic.hpp"

namespace micco {
namespace {

ClusterConfig cluster_of(int devices,
                         std::uint64_t capacity = 512ull << 20) {
  ClusterConfig c;
  c.num_devices = devices;
  c.device_capacity_bytes = capacity;
  return c;
}

WorkloadStream reuse_heavy_stream(DataDistribution dist, std::uint64_t seed,
                                  double rate = 0.75) {
  SyntheticConfig cfg;
  cfg.num_vectors = 10;
  cfg.vector_size = 32;
  cfg.tensor_extent = 128;
  cfg.batch = 4;
  cfg.repeated_rate = rate;
  cfg.distribution = dist;
  cfg.seed = seed;
  return generate_synthetic(cfg);
}

TEST(Integration, MiccoBeatsGrouteOnReuseHeavyUniform) {
  const WorkloadStream stream =
      reuse_heavy_stream(DataDistribution::kUniform, 11);
  const auto entries = compare_schedulers(
      stream, cluster_of(4),
      {SchedulerKind::kGroute, SchedulerKind::kMiccoNaive});
  EXPECT_GT(speedup_of(entries, SchedulerKind::kMiccoNaive,
                       SchedulerKind::kGroute),
            1.0);
}

TEST(Integration, TunedMiccoBeatsGrouteOnReuseHeavyGaussian) {
  // On biased repeats, zero bounds can tie with pure balancing (exactly the
  // paper's motivation for reuse bounds); the best fixed bound triple must
  // beat Groute.
  const WorkloadStream stream =
      reuse_heavy_stream(DataDistribution::kGaussian, 13, 0.5);
  const ClusterConfig cluster = cluster_of(4);
  const auto entries =
      compare_schedulers(stream, cluster, {SchedulerKind::kGroute});
  const double groute_gflops = entries[0].gflops();

  double best = 0.0;
  for (const ReuseBounds& b : fig8_bound_sweep()) {
    best = std::max(best, measure_gflops(stream, b, cluster));
  }
  EXPECT_GT(best, groute_gflops);
}

TEST(Integration, MiccoReusesMoreOperandsThanGroute) {
  // H2D counts only first touches (replicas travel P2P), so the memory-
  // operation win shows up in reuse hits and total transferred bytes.
  const WorkloadStream stream =
      reuse_heavy_stream(DataDistribution::kUniform, 17);
  const auto entries = compare_schedulers(
      stream, cluster_of(4),
      {SchedulerKind::kGroute, SchedulerKind::kMiccoNaive});
  const ExecutionMetrics& groute = entries[0].result.metrics;
  const ExecutionMetrics& micco = entries[1].result.metrics;
  EXPECT_GT(micco.reused_operands, groute.reused_operands);
  EXPECT_LT(micco.h2d_bytes + micco.p2p_bytes,
            groute.h2d_bytes + groute.p2p_bytes);
}

TEST(Integration, TunedBoundsBeatNaiveOnBiasedWorkload) {
  // Gaussian-biased repeats are exactly where slack pays: the hot tensors
  // cluster on few devices, and a small bound lets MICCO keep them there.
  const WorkloadStream stream =
      reuse_heavy_stream(DataDistribution::kGaussian, 19, 0.75);
  const ClusterConfig cluster = cluster_of(4);

  double best_tuned = 0.0;
  for (const ReuseBounds& b : fig8_bound_sweep()) {
    best_tuned = std::max(best_tuned, measure_gflops(stream, b, cluster));
  }
  const double naive = measure_gflops(stream, ReuseBounds::naive(), cluster);
  EXPECT_GE(best_tuned, naive);
}

TEST(Integration, ZeroRepeatWorkloadsShowNoMiccoAdvantage) {
  // Without repeats there is nothing to reuse; MICCO must not lose badly
  // either (sanity bound: within 10% of Groute).
  SyntheticConfig cfg;
  cfg.num_vectors = 8;
  cfg.vector_size = 32;
  cfg.tensor_extent = 128;
  cfg.batch = 4;
  cfg.repeated_rate = 0.0;
  cfg.seed = 23;
  const WorkloadStream stream = generate_synthetic(cfg);
  const auto entries = compare_schedulers(
      stream, cluster_of(4),
      {SchedulerKind::kGroute, SchedulerKind::kMiccoNaive});
  const double speedup = speedup_of(entries, SchedulerKind::kMiccoNaive,
                                    SchedulerKind::kGroute);
  EXPECT_GT(speedup, 0.9);
}

TEST(Integration, MoreDevicesReduceMakespan) {
  const WorkloadStream stream =
      reuse_heavy_stream(DataDistribution::kUniform, 29);
  MiccoScheduler s2, s4;
  const RunResult two = run_stream(stream, s2, cluster_of(2));
  const RunResult four = run_stream(stream, s4, cluster_of(4));
  EXPECT_LT(four.metrics.makespan_s, two.metrics.makespan_s);
}

TEST(Integration, OversubscriptionCausesEvictionsAndSlowdown) {
  const WorkloadStream stream =
      reuse_heavy_stream(DataDistribution::kUniform, 31);
  MiccoScheduler roomy_sched, tight_sched;

  const RunResult roomy = run_stream(stream, roomy_sched, cluster_of(4));
  ClusterConfig tight = cluster_of(4);
  tight.device_capacity_bytes = capacity_for_oversubscription(
      stream, 4, 2.0, 4 * stream.vectors[0].tasks[0].a.bytes());
  const RunResult pressured = run_stream(stream, tight_sched, tight);

  EXPECT_EQ(roomy.metrics.evictions, 0u);
  EXPECT_GT(pressured.metrics.evictions, 0u);
  EXPECT_GT(pressured.metrics.makespan_s, roomy.metrics.makespan_s);
}

TEST(Integration, EvictionSensitivePolicyReducesEvictionsOnAverage) {
  // The policy is a heuristic, not per-seed monotone; require it to win in
  // aggregate across several workloads.
  std::uint64_t total_on = 0;
  std::uint64_t total_off = 0;
  for (const std::uint64_t seed : {37u, 38u, 39u, 40u, 41u}) {
    const WorkloadStream stream =
        reuse_heavy_stream(DataDistribution::kGaussian, seed, 0.75);
    ClusterConfig tight = cluster_of(4);
    tight.device_capacity_bytes = capacity_for_oversubscription(
        stream, 4, 1.5, 4 * stream.vectors[0].tasks[0].a.bytes());

    MiccoSchedulerOptions with_policy;
    with_policy.bounds = ReuseBounds{2, 2, 2};
    with_policy.eviction_sensitive = true;
    MiccoSchedulerOptions without_policy = with_policy;
    without_policy.eviction_sensitive = false;

    MiccoScheduler s_on(with_policy), s_off(without_policy);
    total_on += run_stream(stream, s_on, tight).metrics.evictions;
    total_off += run_stream(stream, s_off, tight).metrics.evictions;
  }
  EXPECT_LE(total_on, total_off);
}

TEST(Integration, EndToEndRegressionPipelineImprovesOrMatchesNaive) {
  // Miniature version of the full Fig. 6 flow: sweep, train, run online.
  TunerConfig tuner;
  tuner.samples = 24;
  tuner.vector_sizes = {16, 32};
  tuner.tensor_extents = {128};
  tuner.repeated_rates = {0.25, 0.75};
  tuner.num_vectors = 6;
  tuner.batch = 2;
  tuner.num_devices = 4;
  tuner.max_bound = 2;
  tuner.seed = 41;
  TrainedBoundsModel model = train_default_model(tuner);

  const WorkloadStream stream =
      reuse_heavy_stream(DataDistribution::kGaussian, 43, 0.75);
  const auto entries = compare_schedulers(
      stream, cluster_of(4),
      {SchedulerKind::kMiccoNaive, SchedulerKind::kMiccoOptimal},
      model.provider.get());
  ASSERT_EQ(entries.size(), 2u);
  const double ratio = speedup_of(entries, SchedulerKind::kMiccoOptimal,
                                  SchedulerKind::kMiccoNaive);
  EXPECT_GT(ratio, 0.95);  // never materially worse than naive
}

TEST(Integration, RedstarWorkloadSchedulesOnCluster) {
  redstar::CorrelatorSpec spec = redstar::make_a1_rhopi();
  spec.time_slices = 4;
  spec.extent = 32;
  spec.batch = 2;
  const redstar::CorrelatorWorkload w = redstar::build_workload(spec);

  const auto entries = compare_schedulers(
      w.stream, cluster_of(4),
      {SchedulerKind::kGroute, SchedulerKind::kMiccoNaive});
  for (const ComparisonEntry& e : entries) {
    EXPECT_EQ(e.result.metrics.total_flops, w.stream.total_flops());
  }
  // Real correlators share hadron nodes heavily; MICCO must reuse more.
  EXPECT_GE(entries[1].result.metrics.reused_operands,
            entries[0].result.metrics.reused_operands);
}

}  // namespace
}  // namespace micco
