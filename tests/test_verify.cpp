#include "core/verify.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "workload/synthetic.hpp"

namespace micco {
namespace {

TensorDesc make_desc(TensorId id, std::int64_t extent = 4,
                     std::int64_t batch = 1, int rank = 2) {
  return TensorDesc{id, rank, extent, batch};
}

ContractionTask make_task(TensorId a, TensorId b, TensorId out) {
  ContractionTask t;
  t.a = make_desc(a);
  t.b = make_desc(b);
  t.out = make_desc(out);
  return t;
}

TEST(ValidateStructure, AcceptsSyntheticStreams) {
  SyntheticConfig cfg;
  cfg.num_vectors = 5;
  cfg.vector_size = 8;
  cfg.tensor_extent = 4;
  cfg.batch = 1;
  cfg.repeated_rate = 0.75;
  const WorkloadStream stream = generate_synthetic(cfg);
  EXPECT_EQ(validate_stream_structure(stream), "");
}

TEST(ValidateStructure, RejectsDuplicateOutputs) {
  WorkloadStream s;
  VectorWorkload v;
  v.tasks = {make_task(0, 1, 10), make_task(2, 3, 10)};
  s.vectors = {v};
  EXPECT_NE(validate_stream_structure(s).find("twice"), std::string::npos);
}

TEST(ValidateStructure, RejectsSameStageDependency) {
  // Task 2 consumes task 1's output inside the same vector: illegal, the
  // stage barrier has not run.
  WorkloadStream s;
  VectorWorkload v;
  v.tasks = {make_task(0, 1, 10), make_task(10, 2, 11)};
  s.vectors = {v};
  EXPECT_NE(validate_stream_structure(s).find("before"), std::string::npos);
}

TEST(ValidateStructure, AcceptsCrossStageDependency) {
  WorkloadStream s;
  VectorWorkload v1, v2;
  v1.tasks = {make_task(0, 1, 10)};
  v2.tasks = {make_task(10, 2, 11)};
  s.vectors = {v1, v2};
  EXPECT_EQ(validate_stream_structure(s), "");
}

TEST(ValidateStructure, RejectsRankMismatch) {
  WorkloadStream s;
  VectorWorkload v;
  ContractionTask t;
  t.a = make_desc(0, 4, 1, 2);
  t.b = make_desc(1, 4, 1, 3);
  t.out = make_desc(10);
  v.tasks = {t};
  s.vectors = {v};
  EXPECT_NE(validate_stream_structure(s).find("rank"), std::string::npos);
}

TEST(ValidateStructure, RejectsShapeMismatch) {
  WorkloadStream s;
  VectorWorkload v;
  ContractionTask t;
  t.a = make_desc(0, 4);
  t.b = make_desc(1, 8);
  t.out = make_desc(10);
  v.tasks = {t};
  s.vectors = {v};
  EXPECT_NE(validate_stream_structure(s).find("contractable"),
            std::string::npos);
}

TEST(Materialize, DeterministicPerTensorId) {
  const Tensor a = materialize_original(make_desc(5));
  const Tensor b = materialize_original(make_desc(5));
  const Tensor c = materialize_original(make_desc(6));
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 0.0);
  EXPECT_GT(a.max_abs_diff(c), 0.0);
}

TEST(Materialize, RespectsRank) {
  EXPECT_EQ(materialize_original(make_desc(1, 4, 2, 3)).shape(),
            Shape::rank3(2, 4));
  EXPECT_EQ(materialize_original(make_desc(1, 4, 2, 2)).shape(),
            Shape::matrix(2, 4));
}

TEST(ExecuteNumerically, RunsEveryTask) {
  SyntheticConfig cfg;
  cfg.num_vectors = 4;
  cfg.vector_size = 8;
  cfg.tensor_extent = 6;
  cfg.batch = 1;
  cfg.repeated_rate = 0.5;
  const WorkloadStream stream = generate_synthetic(cfg);
  const NumericResult r = execute_numerically(stream);
  EXPECT_EQ(r.tasks_executed, 4u * 4u);
  EXPECT_GT(r.digest, 0.0);
  EXPECT_GT(r.peak_bytes, 0u);
}

TEST(ExecuteNumerically, DigestIsDeterministic) {
  SyntheticConfig cfg;
  cfg.num_vectors = 3;
  cfg.vector_size = 8;
  cfg.tensor_extent = 5;
  cfg.batch = 1;
  cfg.repeated_rate = 0.75;
  const WorkloadStream stream = generate_synthetic(cfg);
  EXPECT_DOUBLE_EQ(execute_numerically(stream).digest,
                   execute_numerically(stream).digest);
}

TEST(ExecuteNumerically, DigestInvariantUnderTaskOrderWithinStage) {
  // Scheduling permutes execution order within a stage; the digest must not
  // change (the numeric-transparency property).
  SyntheticConfig cfg;
  cfg.num_vectors = 3;
  cfg.vector_size = 8;
  cfg.tensor_extent = 5;
  cfg.batch = 1;
  cfg.repeated_rate = 0.5;
  WorkloadStream stream = generate_synthetic(cfg);
  const double reference = execute_numerically(stream).digest;

  for (VectorWorkload& v : stream.vectors) {
    std::reverse(v.tasks.begin(), v.tasks.end());
  }
  EXPECT_DOUBLE_EQ(execute_numerically(stream).digest, reference);
}

TEST(ExecuteNumerically, ByteLimitEnforced) {
  SyntheticConfig cfg;
  cfg.num_vectors = 2;
  cfg.vector_size = 8;
  cfg.tensor_extent = 32;
  cfg.batch = 4;
  const WorkloadStream stream = generate_synthetic(cfg);
  EXPECT_DEATH((void)execute_numerically(stream, 1024), "byte limit");
}

TEST(ExecuteNumerically, BaryonStreamsExecute) {
  SyntheticConfig cfg;
  cfg.num_vectors = 2;
  cfg.vector_size = 4;
  cfg.tensor_extent = 4;
  cfg.batch = 1;
  cfg.rank = 3;
  const WorkloadStream stream = generate_synthetic(cfg);
  const NumericResult r = execute_numerically(stream);
  EXPECT_EQ(r.tasks_executed, 4u);
  EXPECT_GT(r.digest, 0.0);
}

}  // namespace
}  // namespace micco
