#include "common/cli.hpp"

#include <gtest/gtest.h>

namespace micco {
namespace {

CliArgs parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(CliArgs, EqualsForm) {
  const CliArgs args = parse({"--gpus=8"});
  EXPECT_EQ(args.get_int("gpus", 0), 8);
}

TEST(CliArgs, SpaceSeparatedForm) {
  const CliArgs args = parse({"--gpus", "4"});
  EXPECT_EQ(args.get_int("gpus", 0), 4);
}

TEST(CliArgs, BareFlagIsBooleanTrue) {
  const CliArgs args = parse({"--verbose"});
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_TRUE(args.has("verbose"));
}

TEST(CliArgs, MissingFlagFallsBack) {
  const CliArgs args = parse({});
  EXPECT_EQ(args.get("name", "default"), "default");
  EXPECT_EQ(args.get_int("n", 42), 42);
  EXPECT_DOUBLE_EQ(args.get_double("x", 1.5), 1.5);
  EXPECT_FALSE(args.has("name"));
}

TEST(CliArgs, BooleanSpellings) {
  EXPECT_TRUE(parse({"--a=true"}).get_bool("a", false));
  EXPECT_TRUE(parse({"--a=on"}).get_bool("a", false));
  EXPECT_TRUE(parse({"--a=yes"}).get_bool("a", false));
  EXPECT_FALSE(parse({"--a=false"}).get_bool("a", true));
  EXPECT_FALSE(parse({"--a=off"}).get_bool("a", true));
  EXPECT_FALSE(parse({"--a=0"}).get_bool("a", true));
}

TEST(CliArgs, UnknownBooleanSpellingFallsBack) {
  EXPECT_TRUE(parse({"--a=banana"}).get_bool("a", true));
  EXPECT_FALSE(parse({"--a=banana"}).get_bool("a", false));
}

TEST(CliArgs, DoubleParsing) {
  const CliArgs args = parse({"--rate=0.75"});
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 0.75);
}

TEST(CliArgs, PositionalArguments) {
  const CliArgs args = parse({"file1", "--flag=1", "file2"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "file1");
  EXPECT_EQ(args.positional()[1], "file2");
}

TEST(CliArgs, LastOccurrenceWins) {
  const CliArgs args = parse({"--n=1", "--n=2"});
  EXPECT_EQ(args.get_int("n", 0), 2);
}

TEST(CliArgs, UnusedFlagsReported) {
  const CliArgs args = parse({"--used=1", "--typo=2"});
  (void)args.get_int("used", 0);
  const auto unused = args.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(CliArgs, EmptyFlagNameIsError) {
  const CliArgs args = parse({"--=x"});
  EXPECT_TRUE(args.error().has_value());
}

TEST(CliArgs, ProgramName) {
  const CliArgs args = parse({});
  EXPECT_EQ(args.program(), "prog");
}

}  // namespace
}  // namespace micco
