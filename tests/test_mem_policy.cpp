#include "mem/policy.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "gpusim/cluster.hpp"
#include "obs/events.hpp"
#include "obs/telemetry.hpp"
#include "sched/micco_scheduler.hpp"
#include "workload/synthetic.hpp"

namespace micco {
namespace {

TensorDesc make_desc(TensorId id, std::int64_t extent = 16,
                     std::int64_t batch = 1) {
  return TensorDesc{id, 2, extent, batch};
}

ContractionTask make_task(TensorId a, TensorId b, TensorId out,
                          std::int64_t extent = 16, std::int64_t batch = 1) {
  ContractionTask t;
  t.a = make_desc(a, extent, batch);
  t.b = make_desc(b, extent, batch);
  t.out = make_desc(out, extent, batch);
  return t;
}

/// Identity visit order for `vec` (the kAsGiven ordering).
std::vector<std::size_t> identity_order(const VectorWorkload& vec) {
  std::vector<std::size_t> order(vec.tasks.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  return order;
}

/// A small stream that oversubscribes device memory so every run evicts.
WorkloadStream pressured_stream() {
  SyntheticConfig cfg;
  cfg.num_vectors = 3;
  cfg.vector_size = 24;
  cfg.tensor_extent = 64;
  cfg.batch = 4;
  cfg.repeated_rate = 0.5;
  cfg.seed = 11;
  return generate_synthetic(cfg);
}

ClusterConfig pressured_cluster(const WorkloadStream& stream) {
  ClusterConfig cluster;
  cluster.num_devices = 2;
  const std::uint64_t floor_bytes = 8 * stream.vectors[0].tasks[0].a.bytes();
  cluster.device_capacity_bytes = capacity_for_oversubscription(
      stream, cluster.num_devices, 3.0, floor_bytes);
  return cluster;
}

// ------------------------------------------------------------- name parsing

TEST(EvictPolicyNames, RoundTripAndSpellings) {
  using mem::EvictPolicyKind;
  EXPECT_STREQ(mem::to_string(EvictPolicyKind::kLru), "lru");
  EXPECT_STREQ(mem::to_string(EvictPolicyKind::kReuseDistance),
               "reuse_distance");
  EXPECT_STREQ(mem::to_string(EvictPolicyKind::kPinUntilLastUse),
               "pin_until_last_use");
  for (const EvictPolicyKind kind : mem::all_evict_policies()) {
    const auto parsed = mem::parse_evict_policy(mem::to_string(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  // CLI hyphen spellings parse to the same kinds.
  EXPECT_EQ(mem::parse_evict_policy("reuse-distance"),
            EvictPolicyKind::kReuseDistance);
  EXPECT_EQ(mem::parse_evict_policy("pin-until-last-use"),
            EvictPolicyKind::kPinUntilLastUse);
  EXPECT_FALSE(mem::parse_evict_policy("belady").has_value());
  EXPECT_FALSE(mem::parse_evict_policy("").has_value());
  EXPECT_EQ(mem::all_evict_policies().size(), 3u);
}

TEST(EvictPolicyNames, MetricSegmentsAreDotFree) {
  for (const mem::EvictPolicyKind kind : mem::all_evict_policies()) {
    EXPECT_EQ(std::string(mem::to_string(kind)).find('.'), std::string::npos);
  }
}

// -------------------------------------------------------- FutureUseTracker

TEST(FutureUseTracker, NextUseFollowsVisitOrder) {
  VectorWorkload vec;
  vec.tasks = {make_task(1, 2, 10), make_task(3, 4, 11), make_task(1, 3, 12)};
  mem::FutureUseTracker tracker;
  tracker.begin_vector(vec, identity_order(vec));

  EXPECT_EQ(tracker.next_use(1), 0);
  EXPECT_EQ(tracker.next_use(3), 1);
  EXPECT_FALSE(tracker.next_use(99).has_value());

  tracker.observe_use(vec.tasks[0], 0);
  EXPECT_EQ(tracker.next_use(1), 2);  // retired pos 0; next use is pair 2
  EXPECT_EQ(tracker.next_use(2), std::nullopt);
  EXPECT_EQ(tracker.cursor(), 0);
}

TEST(FutureUseTracker, RecoveryReplayIsNoOp) {
  VectorWorkload vec;
  vec.tasks = {make_task(1, 2, 10), make_task(1, 3, 11)};
  mem::FutureUseTracker tracker;
  tracker.begin_vector(vec, identity_order(vec));
  tracker.observe_use(vec.tasks[0], 0);
  const auto before = tracker.next_use(1);
  // A lineage re-execution after a device loss replays the same task with
  // position -1: the books must not retire anything twice.
  tracker.observe_use(vec.tasks[0], -1);
  EXPECT_EQ(tracker.next_use(1), before);
}

TEST(FutureUseTracker, RespectsNonIdentityVisitOrder) {
  VectorWorkload vec;
  vec.tasks = {make_task(1, 2, 10), make_task(3, 4, 11), make_task(5, 6, 12)};
  // Visit order 2,0,1: tensor 5 is used at position 0, tensor 1 at 1.
  mem::FutureUseTracker tracker;
  tracker.begin_vector(vec, {2, 0, 1});
  EXPECT_EQ(tracker.next_use(5), 0);
  EXPECT_EQ(tracker.next_use(1), 1);
  EXPECT_EQ(tracker.next_use(3), 2);
}

// ------------------------------------------------------------ victim orders

TEST(LruPolicy, MatchesEvictLruDecisions) {
  mem::LruPolicy policy;
  DeviceMemory mem(1000);
  DeviceMemory shadow(1000);
  for (TensorId id = 0; id < 5; ++id) {
    mem.allocate(id, 100, false);
    shadow.allocate(id, 100, false);
  }
  mem.touch(0);
  shadow.touch(0);
  while (true) {
    const auto choice = policy.pick_victim(mem);
    const auto legacy = shadow.evict_lru();
    ASSERT_EQ(choice.has_value(), legacy.has_value());
    if (!choice.has_value()) break;
    EXPECT_EQ(choice->id, legacy->id);
    EXPECT_EQ(choice->reuse_distance, mem::kNoFutureUse);
    mem.release(choice->id);
  }
}

TEST(LruPolicy, SkipsPinnedAndReportsNoVictimWhenAllPinned) {
  mem::LruPolicy policy;
  DeviceMemory mem(1000);
  mem.allocate(1, 100, false);
  mem.allocate(2, 100, false);
  mem.pin(1);
  const auto choice = policy.pick_victim(mem);
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(choice->id, 2u);
  mem.pin(2);
  EXPECT_FALSE(policy.pick_victim(mem).has_value());
}

TEST(ReuseDistancePolicy, EvictsFarthestNextUse) {
  // Pairs: (1,2) at 0, (3,4) at 1, (1,3) at 2 -> after executing pair 0,
  // next uses are 3:1, 1:2, and 2/4 never again.
  VectorWorkload vec;
  vec.tasks = {make_task(1, 2, 10), make_task(3, 4, 11), make_task(1, 3, 12)};
  mem::ReuseDistancePolicy policy;
  policy.begin_vector(vec, identity_order(vec));
  policy.observe_use(vec.tasks[0], 0);

  DeviceMemory mem(1000);
  mem.allocate(1, 100, false);
  mem.allocate(3, 100, false);
  mem.allocate(2, 100, false);  // never used again: wins outright
  const auto choice = policy.pick_victim(mem);
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(choice->id, 2u);
  EXPECT_EQ(choice->reuse_distance, mem::kNoFutureUse);

  mem.release(2);
  // Both residents have future uses: tensor 1 (pos 2) is farther than
  // tensor 3 (pos 1) from the cursor (0).
  const auto next = policy.pick_victim(mem);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->id, 1u);
  EXPECT_EQ(next->reuse_distance, 2u);
}

TEST(ReuseDistancePolicy, NeverUsedTiesBreakTowardLru) {
  VectorWorkload vec;
  vec.tasks = {make_task(1, 2, 10)};
  mem::ReuseDistancePolicy policy;
  policy.begin_vector(vec, identity_order(vec));

  DeviceMemory mem(1000);
  mem.allocate(7, 100, false);  // older
  mem.allocate(8, 100, false);
  // Neither 7 nor 8 has a future use: the LRU one goes first.
  const auto choice = policy.pick_victim(mem);
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(choice->id, 7u);
}

TEST(ReuseDistancePolicy, SkipsPinnedResidents) {
  VectorWorkload vec;
  vec.tasks = {make_task(1, 2, 10)};
  mem::ReuseDistancePolicy policy;
  policy.begin_vector(vec, identity_order(vec));

  DeviceMemory mem(1000);
  mem.allocate(5, 100, false);
  mem.allocate(6, 100, false);
  mem.pin(5);
  const auto choice = policy.pick_victim(mem);
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(choice->id, 6u);
}

TEST(PinUntilLastUsePolicy, PrefersConsumerFreeVictims) {
  // Tensor 1 still has a pending consumer (pair 1); tensor 9 does not.
  // Even though 1 is least recently used, the policy spares it.
  VectorWorkload vec;
  vec.tasks = {make_task(1, 2, 10), make_task(1, 3, 11)};
  mem::PinUntilLastUsePolicy policy;
  policy.begin_vector(vec, identity_order(vec));

  DeviceMemory mem(1000);
  mem.allocate(1, 100, false);
  mem.allocate(9, 100, false);
  const auto choice = policy.pick_victim(mem);
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(choice->id, 9u);
  EXPECT_EQ(choice->reuse_distance, mem::kNoFutureUse);
}

TEST(PinUntilLastUsePolicy, HardPressureSpillsInBeladyOrder) {
  // Every resident has a pending consumer: the pressure spill must pick
  // the farthest next use, not refuse.
  VectorWorkload vec;
  vec.tasks = {make_task(1, 2, 10), make_task(3, 4, 11), make_task(1, 3, 12)};
  mem::PinUntilLastUsePolicy policy;
  policy.begin_vector(vec, identity_order(vec));

  DeviceMemory mem(1000);
  mem.allocate(3, 100, false);  // next use: pos 1
  mem.allocate(2, 100, false);  // next use: pos 0
  const auto choice = policy.pick_victim(mem);
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(choice->id, 3u);
  EXPECT_EQ(choice->reuse_distance, 1u);
}

// -------------------------------------------------------- deep-copy safety

TEST(EvictionPolicy, SimulatorClonesShareThePolicyWithoutCrosstalk) {
  // The oracle scheduler copies whole simulators per candidate assignment;
  // the clones share one policy pointer. pick_victim is const, so probe
  // executions in a clone must not disturb the original's residency.
  ClusterConfig cfg;
  cfg.num_devices = 1;
  cfg.device_capacity_bytes = 4 * make_desc(0).bytes();

  mem::ReuseDistancePolicy policy;
  VectorWorkload vec;
  vec.tasks = {make_task(0, 1, 10), make_task(2, 3, 11), make_task(0, 2, 12)};
  policy.begin_vector(vec, identity_order(vec));

  ClusterSimulator sim(cfg);
  sim.set_eviction_policy(&policy);
  sim.execute(vec.tasks[0], 0);
  const std::uint64_t used_before = sim.memory_used(0);

  ClusterSimulator clone = sim;
  clone.execute(vec.tasks[1], 0);  // forces an eviction in the clone only
  EXPECT_EQ(sim.memory_used(0), used_before);
  EXPECT_TRUE(sim.resident_on(0, 0));
  EXPECT_TRUE(sim.resident_on(0, 1));

  // The shared policy still answers consistently for both simulators.
  const auto choice = policy.pick_victim(clone.device_memory(0));
  EXPECT_TRUE(choice.has_value());
}

// ---------------------------------------------------- default byte-identity

TEST(EvictionPolicy, ExplicitLruMatchesDefaultDecisions) {
  const WorkloadStream stream = pressured_stream();
  const ClusterConfig cluster = pressured_cluster(stream);

  const auto run_with_sink = [&](mem::EvictionPolicy* policy,
                                 std::ostringstream* log) {
    obs::BufferedJsonlEventSink sink(*log);
    obs::Telemetry telemetry;
    telemetry.sink = &sink;
    MiccoScheduler scheduler;
    RunOptions options;
    options.telemetry = &telemetry;
    options.evict_policy = policy;
    const RunResult result = run_stream(stream, scheduler, cluster, options);
    sink.flush();
    return result;
  };

  std::ostringstream default_log;
  std::ostringstream lru_log;
  const RunResult default_run = run_with_sink(nullptr, &default_log);
  mem::LruPolicy lru;
  const RunResult lru_run = run_with_sink(&lru, &lru_log);

  ASSERT_TRUE(default_run.completed);
  ASSERT_TRUE(lru_run.completed);
  EXPECT_GT(default_run.metrics.evictions, 0u);
  EXPECT_EQ(lru_run.metrics.evictions, default_run.metrics.evictions);
  EXPECT_EQ(lru_run.metrics.fetched_operands,
            default_run.metrics.fetched_operands);
  EXPECT_EQ(lru_run.metrics.reused_operands,
            default_run.metrics.reused_operands);
  EXPECT_EQ(lru_run.metrics.writeback_bytes,
            default_run.metrics.writeback_bytes);
  EXPECT_DOUBLE_EQ(lru_run.metrics.makespan_s, default_run.metrics.makespan_s);

  // The two event logs are byte-identical once the one deliberate policy
  // annotation (the "/lru" eviction-detail suffix) is stripped.
  std::string normalized = lru_log.str();
  for (std::size_t pos = normalized.find("/lru"); pos != std::string::npos;
       pos = normalized.find("/lru", pos)) {
    normalized.erase(pos, 4);
  }
  EXPECT_EQ(normalized, default_log.str());
  EXPECT_NE(lru_log.str(), default_log.str());  // the annotation is real
}

TEST(EvictionPolicy, DefaultRunReportCarriesNoPolicyKeys) {
  const WorkloadStream stream = pressured_stream();
  const ClusterConfig cluster = pressured_cluster(stream);

  obs::Telemetry telemetry;
  MiccoScheduler scheduler;
  RunOptions options;
  options.telemetry = &telemetry;
  const RunResult result = run_stream(stream, scheduler, cluster, options);
  ASSERT_TRUE(result.completed);
  EXPECT_GT(result.metrics.evictions, 0u);
  EXPECT_TRUE(result.metrics.evict_policy.empty());
  EXPECT_EQ(result.metrics.eviction_refetch_bytes, 0u);

  const std::string report =
      make_run_report(result, telemetry).dump();
  EXPECT_EQ(report.find("evict_policy"), std::string::npos);
  EXPECT_EQ(report.find("mem."), std::string::npos);
}

TEST(EvictionPolicy, AttachedPolicySurfacesInMetricsAndReport) {
  const WorkloadStream stream = pressured_stream();
  const ClusterConfig cluster = pressured_cluster(stream);

  obs::Telemetry telemetry;
  MiccoScheduler scheduler;
  mem::ReuseDistancePolicy policy;
  RunOptions options;
  options.telemetry = &telemetry;
  options.evict_policy = &policy;
  const RunResult result = run_stream(stream, scheduler, cluster, options);
  ASSERT_TRUE(result.completed);
  EXPECT_GT(result.metrics.evictions, 0u);
  EXPECT_EQ(result.metrics.evict_policy, "reuse_distance");

  const std::string report = make_run_report(result, telemetry).dump();
  EXPECT_NE(report.find("\"evict_policy\":\"reuse_distance\""),
            std::string::npos);
  EXPECT_NE(report.find("mem.evictions.reuse_distance"), std::string::npos);
  EXPECT_NE(report.find("mem.evicted_bytes.reuse_distance"),
            std::string::npos);
}

}  // namespace
}  // namespace micco
