// Fixture: dotted telemetry name literals outside obs/names.hpp. Each of
// the three reserved roots fires; concatenation of a dotted prefix piece
// fires on the prefix.
#include <string>

std::string decisions() { return "sched.decisions"; }
std::string fetch() { return "cluster.fetch.bytes"; }
std::string queued() { return "service.queued"; }
std::string pieced() { return "service." "queued"; }
