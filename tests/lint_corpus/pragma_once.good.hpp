// Fixture: the required header guard.
#pragma once
inline int answer() { return 42; }
