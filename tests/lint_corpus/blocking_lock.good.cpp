// lint corpus: the blocking-under-lock-clean shape — snapshot the shared
// state under the guard, release, then block on the network outside the
// critical section.
#include "common/mutex.hpp"

namespace corpus {

class Pusher {
 public:
  void push();

 private:
  int fd_ = -1;
  micco::Mutex mutex_;
};

void Pusher::push() {
  int fd = -1;
  {
    const micco::MutexLock lock(mutex_);
    fd = fd_;
  }
  char byte = 0;
  ::send(fd, &byte, 1, 0);
}

}  // namespace corpus
