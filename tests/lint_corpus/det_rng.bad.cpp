// Fixture: every banned randomness / wall-clock source in one file.
// Not compiled; scanned by MiccoLintRules.DetRngBad.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

unsigned nondeterministic_seed() {
  std::random_device device;                       // det-rng
  srand(static_cast<unsigned>(time(nullptr)));     // det-rng (srand + time)
  const int low = rand();                          // det-rng
  std::mt19937 engine(device());                   // det-rng (engine)
  const auto now = std::chrono::system_clock::now();  // det-rng
  return static_cast<unsigned>(low) + static_cast<unsigned>(engine()) +
         static_cast<unsigned>(now.time_since_epoch().count());
}
