// Fixture: the sanctioned forms — annotated micco wrappers and atomics that
// carry a MICCO_* marker on their declaration line.
#include <atomic>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

struct Annotated {
  micco::Mutex mutex;
  int guarded MICCO_GUARDED_BY(mutex) = 0;
  MICCO_LOCK_FREE std::atomic<int> counter{0};
  int locked_get() {
    const micco::MutexLock lock(mutex);
    return guarded;
  }
};
