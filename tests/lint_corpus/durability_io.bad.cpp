// Fixture: raw POSIX durability calls in library scope. Both must fire
// raw-durability-io — durable bytes belong behind the EINTR-retrying
// wrappers in service/journal.cpp. (Corpus files are scanned, never
// compiled.)
#include <unistd.h>

bool persist(int fd, const char* data, unsigned long size) {
  if (::write(fd, data, size) < 0) return false;  // raw-durability-io
  return ::fsync(fd) == 0;                        // raw-durability-io
}
