// Fixture: raw standard-library synchronization in library scope. Clang's
// thread-safety analysis cannot see through std::mutex/lock_guard, and an
// unannotated atomic documents nothing about its consistency story.
#include <atomic>
#include <condition_variable>
#include <mutex>

struct Unannotated {
  std::mutex mutex;                  // thread-annotation
  std::condition_variable ready;     // thread-annotation
  std::atomic<int> counter{0};       // thread-annotation (no marker macro)
  int locked_get() {
    const std::lock_guard<std::mutex> lock(mutex);  // thread-annotation
    return counter.load();
  }
};
