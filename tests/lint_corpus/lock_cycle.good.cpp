// lint corpus: consistent lock nesting — same two classes as
// lock_cycle.bad.cpp, but every path acquires Alpha::mutex_ strictly
// before Beta::mutex_. The graph has one edge and no cycle: clean.
#include "common/mutex.hpp"

namespace corpus {

class Beta {
 public:
  void prod();

 private:
  micco::Mutex mutex_;
};

class Alpha {
 public:
  void poke();
  void tick();

 private:
  Beta* beta_ = nullptr;
  micco::Mutex mutex_;
};

void Beta::prod() { const micco::MutexLock lock(mutex_); }

void Alpha::poke() {
  const micco::MutexLock lock(mutex_);
  beta_->prod();
}

void Alpha::tick() {
  const micco::MutexLock lock(mutex_);
  beta_->prod();
}

}  // namespace corpus
