// Fixture: a header without an include guard directive.
#ifndef MICCO_LINT_CORPUS_PRAGMA_ONCE_BAD_HPP
#define MICCO_LINT_CORPUS_PRAGMA_ONCE_BAD_HPP
inline int answer() { return 42; }
#endif
