// Fixture: calls that must NOT fire raw-durability-io — class-qualified and
// member functions that happen to be named write/fsync, stream I/O, a
// banned name inside a string, and a suppressed raw call. (Corpus files are
// scanned, never compiled, so the declarations are loose.)
#include <fstream>
#include <string>

struct Sink {
  void write(const std::string& bytes);
  bool fsync();
};

void buffered(Sink& sink, std::ofstream& out, const std::string& bytes) {
  sink.write(bytes);       // member access, not the POSIX call
  Sink::write;             // class-qualified name, not global scope
  (&sink)->fsync();
  out.write(bytes.data(), static_cast<long>(bytes.size()));
  const char* doc = "never call ::write or ::fsync directly";
  (void)doc;
}

bool escape_hatch(int fd) {
  // micco-lint: allow(raw-durability-io) fixture pins the escape hatch
  return ::fdatasync(fd) == 0;
}
