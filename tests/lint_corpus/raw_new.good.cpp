// Fixture: RAII ownership and deleted special members. '= delete' must not
// be confused with the delete expression.
#include <memory>

struct Pinned {
  Pinned() = default;
  Pinned(const Pinned&) = delete;
  Pinned& operator=(const Pinned&) = delete;
};

std::unique_ptr<int> owned() { return std::make_unique<int>(7); }
