// Fixture: hash-ordered iteration is legal in a TU that never reaches an
// output-affecting header — the order cannot leak into logs or reports.
#include <unordered_map>

int sum_any_order() {
  std::unordered_map<int, int> weights;
  int total = 0;
  for (const auto& [key, value] : weights) total += key + value;
  return total;
}
