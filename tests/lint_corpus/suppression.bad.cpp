// Fixture: malformed suppressions. An unknown rule or a missing reason is
// itself a finding (bad-suppression), and the directive suppresses nothing.
#include <cstdio>

// micco-lint: allow(not-a-rule) this rule does not exist
void unknown_rule() { printf("still flagged\n"); }

// micco-lint: allow(no-stdout)
void missing_reason() { printf("still flagged\n"); }
