// Fixture: hash-ordered iteration in a TU whose include closure reaches an
// output-affecting header. Both the range-for and the .begin() forms fire.
#include "obs/events.hpp"

#include <unordered_map>

int sum_hash_ordered() {
  std::unordered_map<int, int> weights;
  int total = 0;
  for (const auto& [key, value] : weights) total += key + value;  // fires
  for (auto it = weights.begin(); it != weights.end(); ++it) {    // fires
    total += it->second;
  }
  return total;
}
