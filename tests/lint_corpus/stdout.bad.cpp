// Fixture: writing to stdout from library scope.
#include <cstdio>
#include <iostream>

void chatty(int value) {
  printf("value=%d\n", value);        // no-stdout
  std::cout << "value=" << value;     // no-stdout
}
