// Fixture: literals that must NOT fire metric-name-literal — bare root
// words without a dot, dotted names under an unreserved root, names with a
// non-metric character set, dotted names in comments ("sched.decisions"
// here is stripped before the rule runs), and a suppressed occurrence.
#include <string>

std::string bare() { return "sched"; }
std::string other_root() { return "graph.nodes"; }
std::string not_a_name() { return "sched.Decisions are logged"; }
std::string version() { return "1.5"; }
std::string suppressed() {
  // micco-lint: allow(metric-name-literal) fixture pins the escape hatch
  return "service.queued";
}
