// lint corpus: lock-order-cycle must fire (exit 19).
//
// Alpha::poke holds Alpha::mutex_ while calling into Beta::prod, which
// takes Beta::mutex_; Beta::bump holds Beta::mutex_ while calling back
// into Alpha::tick, which takes Alpha::mutex_. The extracted lock graph
// has both edges, so some schedule deadlocks: one thread in poke, one in
// bump, each holding the lock the other wants.
#include "common/mutex.hpp"

namespace corpus {

class Beta;

class Alpha {
 public:
  void poke();
  void tick();

 private:
  Beta* beta_ = nullptr;
  micco::Mutex mutex_;
};

class Beta {
 public:
  void prod();
  void bump();

 private:
  Alpha* alpha_ = nullptr;
  micco::Mutex mutex_;
};

void Alpha::poke() {
  const micco::MutexLock lock(mutex_);
  beta_->prod();
}

void Alpha::tick() { const micco::MutexLock lock(mutex_); }

void Beta::prod() { const micco::MutexLock lock(mutex_); }

void Beta::bump() {
  const micco::MutexLock lock(mutex_);
  alpha_->tick();
}

}  // namespace corpus
