// Fixture: deterministic randomness plus identifiers that merely *resemble*
// banned names. None of these may fire. (Corpus files are scanned, never
// compiled, so the member calls need no declarations.)
#include "common/rng.hpp"

long busy_time(long x) { return x; }  // 'time' as an identifier suffix

double deterministic_draw(micco::Pcg32& rng, const micco::Pcg32& clock) {
  // Member access is exempt: obj.time() / ptr->rand() are not the C library.
  const long member_time = clock.time();
  const long member_rand = (&clock)->rand();
  // Banned names inside comments and strings are invisible to the scanner:
  const char* doc = "never call rand() or time(nullptr) here";
  return rng.next_double() + static_cast<double>(member_time + member_rand) +
         static_cast<double>(busy_time(static_cast<long>(doc[0])));
}
