// Fixture: the sanctioned idiom in an output-affecting TU — sort at the
// emission point and iterate the sorted copy, probing the hash map by key.
#include "obs/events.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

int sum_sorted(const std::vector<int>& ids) {
  std::unordered_map<int, int> weights;
  std::vector<int> keys = ids;
  std::sort(keys.begin(), keys.end());
  int total = 0;
  for (const int key : keys) {  // vector iteration: deterministic
    const auto it = weights.find(key);  // point lookup: fine
    if (it != weights.end()) total += it->second;
  }
  return total;
}
