// lint corpus: wal-release-before-durable must fire (exit 21) — the job
// becomes visible (release_job) before any durable journal append in the
// enclosing scope chain, so a crash between the two forgets an admitted
// job.
namespace corpus {

class Ledger {
 public:
  bool append(int record);
};

class Admissions {
 public:
  void release_job(int job_id);
  void admit(int job_id);

 private:
  Ledger journal_;
};

void Admissions::admit(int job_id) {
  release_job(job_id);
  journal_.append(job_id);
}

}  // namespace corpus
