// lint corpus: a well-formed directive that no longer suppresses anything.
// Normal lint mode stays clean (a stale allow() hides nothing today), but
// the suppressions report must flag it so it gets deleted before it can
// mask a future regression.
namespace corpus {

int quiet() {
  // micco-lint: allow(no-stdout) once covered a printf that has since moved
  int value = 0;
  return value;
}

}  // namespace corpus
