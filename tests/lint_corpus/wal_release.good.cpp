// lint corpus: the write-ahead shape — the durable journal append
// dominates release_job in the same scope chain, so recovery always
// re-learns any job that became visible.
namespace corpus {

class Ledger {
 public:
  bool append(int record);
};

class Admissions {
 public:
  void release_job(int job_id);
  void admit(int job_id);

 private:
  Ledger journal_;
};

void Admissions::admit(int job_id) {
  if (!journal_.append(job_id)) return;
  release_job(job_id);
}

}  // namespace corpus
