// lint corpus: blocking-under-lock must fire (exit 20) — once for the
// direct ::send under the guard, once for the call into drain(), which
// transitively blocks on ::send.
#include "common/mutex.hpp"

namespace corpus {

void drain(int fd) {
  char byte = 0;
  ::send(fd, &byte, 1, 0);
}

class Pusher {
 public:
  void push();

 private:
  int fd_ = -1;
  micco::Mutex mutex_;
};

void Pusher::push() {
  const micco::MutexLock lock(mutex_);
  char byte = 0;
  ::send(fd_, &byte, 1, 0);
  drain(fd_);
}

}  // namespace corpus
