// Fixture: both suppression placements — the line directly above and the
// offending line itself. With valid rule names and reasons, the file is
// clean.
#include <cstdio>

// micco-lint: allow(no-stdout) fixture exercises the line-above placement
void banner() { printf("hello\n"); }

void trailer() { printf("bye\n"); }  // micco-lint: allow(no-stdout) same-line placement
