// lint corpus: blocking-under-lock silenced by a justified allow() — the
// pattern the in-tree journal uses where the blocking call and the lock
// are inseparable (O_APPEND record framing). Must lint clean, and the
// directive must report as live.
#include "common/mutex.hpp"

namespace corpus {

class Pusher {
 public:
  void push();

 private:
  int fd_ = -1;
  micco::Mutex mutex_;
};

void Pusher::push() {
  const micco::MutexLock lock(mutex_);
  char byte = 0;
  // micco-lint: allow(blocking-under-lock) the send frames a record; concurrent pushes must serialize
  ::send(fd_, &byte, 1, 0);
}

}  // namespace corpus
