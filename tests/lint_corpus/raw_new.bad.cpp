// Fixture: manual memory management in library scope.
int* leak_prone() {
  int* p = new int(7);   // no-raw-new
  delete p;              // no-raw-new
  return new int[3];     // no-raw-new
}
