#include <gtest/gtest.h>

#include "tensor/tensor.hpp"

namespace micco {
namespace {

TEST(Shape, MatrixFactory) {
  const Shape s = Shape::matrix(4, 16);
  EXPECT_EQ(s.batch(), 4);
  EXPECT_EQ(s.rank(), 2);
  EXPECT_EQ(s.dim(0), 16);
  EXPECT_EQ(s.dim(1), 16);
  EXPECT_EQ(s.elements_per_batch(), 256);
  EXPECT_EQ(s.elements(), 1024);
}

TEST(Shape, Rank3Factory) {
  const Shape s = Shape::rank3(2, 5);
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.elements(), 2 * 125);
}

TEST(Shape, RectangularDims) {
  const Shape s(3, {4, 7});
  EXPECT_EQ(s.dim(0), 4);
  EXPECT_EQ(s.dim(1), 7);
  EXPECT_EQ(s.elements(), 3 * 28);
}

TEST(Shape, Equality) {
  EXPECT_EQ(Shape::matrix(2, 8), Shape::matrix(2, 8));
  EXPECT_NE(Shape::matrix(2, 8), Shape::matrix(2, 9));
  EXPECT_NE(Shape::matrix(2, 8), Shape::rank3(2, 8));
}

TEST(Shape, ToStringMentionsDims) {
  const std::string s = Shape::matrix(2, 8).to_string();
  EXPECT_NE(s.find("batch=2"), std::string::npos);
  EXPECT_NE(s.find("8x8"), std::string::npos);
}

TEST(Tensor, ZeroInitialised) {
  Tensor t(Shape::matrix(2, 3));
  for (const cplx& v : t.data()) {
    EXPECT_EQ(v, (cplx{0.0, 0.0}));
  }
}

TEST(Tensor, BytesMatchElementCount) {
  Tensor t(Shape::matrix(2, 3));
  EXPECT_EQ(t.bytes(), 2u * 9u * sizeof(cplx));
}

TEST(Tensor, ElementAccessRank2RoundTrip) {
  Tensor t(Shape::matrix(2, 3));
  t.at(1, 2, 0) = cplx{1.5, -2.5};
  EXPECT_EQ(t.at(1, 2, 0), (cplx{1.5, -2.5}));
  // Neighbours untouched.
  EXPECT_EQ(t.at(1, 1, 2), (cplx{0.0, 0.0}));
  EXPECT_EQ(t.at(0, 2, 0), (cplx{0.0, 0.0}));
}

TEST(Tensor, ElementAccessRank3RoundTrip) {
  Tensor t(Shape::rank3(2, 3));
  t.at(1, 0, 2, 1) = cplx{3.0, 4.0};
  EXPECT_EQ(t.at(1, 0, 2, 1), (cplx{3.0, 4.0}));
}

TEST(Tensor, RowMajorLayoutRank2) {
  Tensor t(Shape::matrix(1, 2));
  t.at(0, 0, 0) = cplx{1, 0};
  t.at(0, 0, 1) = cplx{2, 0};
  t.at(0, 1, 0) = cplx{3, 0};
  t.at(0, 1, 1) = cplx{4, 0};
  const auto d = t.data();
  EXPECT_EQ(d[0].real(), 1.0);
  EXPECT_EQ(d[1].real(), 2.0);
  EXPECT_EQ(d[2].real(), 3.0);
  EXPECT_EQ(d[3].real(), 4.0);
}

TEST(Tensor, RandomIsDeterministicPerRngState) {
  Pcg32 rng1(99), rng2(99);
  const Tensor a = Tensor::random(Shape::matrix(2, 4), rng1);
  const Tensor b = Tensor::random(Shape::matrix(2, 4), rng2);
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 0.0);
}

TEST(Tensor, RandomValuesInUnitSquare) {
  Pcg32 rng(1);
  const Tensor t = Tensor::random(Shape::matrix(4, 8), rng);
  for (const cplx& v : t.data()) {
    EXPECT_GE(v.real(), -1.0);
    EXPECT_LT(v.real(), 1.0);
    EXPECT_GE(v.imag(), -1.0);
    EXPECT_LT(v.imag(), 1.0);
  }
}

TEST(Tensor, MaxAbsDiffDetectsChange) {
  Pcg32 rng(3);
  Tensor a = Tensor::random(Shape::matrix(1, 4), rng);
  Tensor b = a;
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 0.0);
  b.at(0, 2, 2) += cplx{0.5, 0.0};
  EXPECT_NEAR(a.max_abs_diff(b), 0.5, 1e-15);
}

TEST(Tensor, FrobeniusNormKnownValue) {
  Tensor t(Shape::matrix(1, 2));
  t.at(0, 0, 0) = cplx{3.0, 0.0};
  t.at(0, 1, 1) = cplx{0.0, 4.0};
  EXPECT_NEAR(t.frobenius_norm(), 5.0, 1e-12);
}

}  // namespace
}  // namespace micco
