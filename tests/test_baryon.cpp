// Baryon-system coverage: mixed-rank contraction kernels, rank propagation
// through the registry/planner, baryon Wick contraction, and end-to-end
// numeric execution of nucleon correlators.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/verify.hpp"
#include "redstar/correlator.hpp"
#include "tensor/contraction.hpp"

namespace micco {
namespace {

using redstar::BaryonOp;
using redstar::Construction;
using redstar::Flavor;

Construction nucleon_construction(int momentum = 0) {
  Construction c;
  c.baryons = {BaryonOp{"N+", {Flavor::kUp, Flavor::kUp, Flavor::kDown},
                        momentum}};
  return c;
}

TEST(MixedContraction, MatchesManualSum) {
  constexpr std::int64_t kE = 3;
  Pcg32 rng(1);
  const Tensor m = Tensor::random(Shape::matrix(2, kE), rng);
  const Tensor t = Tensor::random(Shape::rank3(2, kE), rng);
  const Tensor c = contract_mixed(m, t);
  ASSERT_EQ(c.shape(), Shape::rank3(2, kE));
  for (std::int64_t b = 0; b < 2; ++b) {
    for (std::int64_t i = 0; i < kE; ++i) {
      for (std::int64_t k = 0; k < kE; ++k) {
        for (std::int64_t l = 0; l < kE; ++l) {
          cplx acc{0.0, 0.0};
          for (std::int64_t j = 0; j < kE; ++j) {
            acc += m.at(b, i, j) * t.at(b, j, k, l);
          }
          EXPECT_NEAR(std::abs(c.at(b, i, k, l) - acc), 0.0, 1e-12);
        }
      }
    }
  }
}

TEST(MixedContraction, IdentityMatrixIsNeutral) {
  Pcg32 rng(2);
  const Tensor t = Tensor::random(Shape::rank3(2, 4), rng);
  Tensor identity(Shape::matrix(2, 4));
  for (std::int64_t b = 0; b < 2; ++b) {
    for (std::int64_t i = 0; i < 4; ++i) identity.at(b, i, i) = {1.0, 0.0};
  }
  EXPECT_LT(contract_mixed(identity, t).max_abs_diff(t), 1e-12);
}

TEST(ContractionRules, ResultRanks) {
  EXPECT_EQ(contraction_result_rank(2, 2), 2);
  EXPECT_EQ(contraction_result_rank(3, 3), 2);
  EXPECT_EQ(contraction_result_rank(2, 3), 3);
  EXPECT_EQ(contraction_result_rank(3, 2), 3);
}

TEST(ContractionRules, MixedFlopsAndBytes) {
  EXPECT_EQ(mixed_contraction_flops(2, 5), 8ull * 2 * 5 * 5 * 5 * 5);
  EXPECT_EQ(hadron_contraction_flops(2, 3, 2, 5), mixed_contraction_flops(2, 5));
  // Mixed traffic: rank-2 + rank-3 operands, rank-3 output.
  EXPECT_EQ(hadron_contraction_bytes(2, 3, 1, 4),
            (16ull + 64 + 64) * sizeof(cplx));
}

TEST(NodeRegistry, MixedIntermediateRanks) {
  NodeRegistry reg(8, 1);
  const TensorDesc meson = reg.original("m", 2);
  const TensorDesc baryon = reg.original("b", 3);
  EXPECT_EQ(reg.rank_of(meson.id), 2);
  EXPECT_EQ(reg.rank_of(baryon.id), 3);

  const TensorDesc mixed = reg.intermediate(meson.id, baryon.id);
  EXPECT_EQ(mixed.rank, 3);
  const TensorDesc double_contraction = reg.intermediate(baryon.id,
                                                         reg.original("b2", 3).id);
  EXPECT_EQ(double_contraction.rank, 2);
}

TEST(NodeRegistry, RankConflictAborts) {
  NodeRegistry reg(8, 1);
  (void)reg.original("x", 2);
  EXPECT_DEATH((void)reg.original("x", 3), "different rank");
}

TEST(BaryonWick, NucleonTwoPointHasDirectAndExchange) {
  NodeRegistry reg(8, 1);
  const auto diagrams = redstar::enumerate_diagrams(
      nucleon_construction(), nucleon_construction(), 1, reg, 64);
  // uud vs conj(uud): the two u-quark pairings give direct + exchange, but
  // both collapse to the same 2-node 3-edge propagator multiset.
  ASSERT_GE(diagrams.size(), 1u);
  for (const ContractionGraph& g : diagrams) {
    EXPECT_EQ(g.node_count(), 2u);
    EXPECT_EQ(g.edge_count(), 3u);  // three quark propagators
    for (const TensorDesc& n : g.nodes()) EXPECT_EQ(n.rank, 3);
  }
}

TEST(BaryonWick, TwoNucleonSystemGrowsFactorially) {
  Construction one = nucleon_construction();
  Construction two;
  two.baryons = {BaryonOp{"N+", {Flavor::kUp, Flavor::kUp, Flavor::kDown}, 1},
                 BaryonOp{"N+", {Flavor::kUp, Flavor::kUp, Flavor::kDown},
                          -1}};
  EXPECT_GT(redstar::count_diagrams(two, two, 10000),
            3 * redstar::count_diagrams(one, one, 10000));
}

TEST(BaryonWick, MesonBaryonMixBalancesWhenFlavorsMatch) {
  // <N pi+ | N pi+>: quarks u,u,d (N) + u (pi) at sink; conjugated source
  // supplies the matching antiquarks.
  Construction npi = nucleon_construction();
  npi.hadrons = {redstar::MesonOp{"pi+", Flavor::kUp, Flavor::kDown, 0}};
  EXPECT_TRUE(redstar::flavor_balanced(npi, npi));
  NodeRegistry reg(8, 1);
  const auto diagrams =
      redstar::enumerate_diagrams(npi, npi, 1, reg, 256);
  EXPECT_GE(diagrams.size(), 2u);
  // Mixed node ranks appear in one diagram.
  bool saw_rank2 = false, saw_rank3 = false;
  for (const TensorDesc& n : diagrams[0].nodes()) {
    saw_rank2 |= n.rank == 2;
    saw_rank3 |= n.rank == 3;
  }
  EXPECT_TRUE(saw_rank2);
  EXPECT_TRUE(saw_rank3);
}

TEST(BaryonCorrelator, NucleonTwoPointBuildsAndValidates) {
  redstar::CorrelatorSpec spec = redstar::make_nucleon_2pt();
  spec.time_slices = 3;
  spec.extent = 6;
  spec.batch = 1;
  const auto workload = redstar::build_workload(spec);
  EXPECT_GT(workload.stats.contractions, 0u);
  EXPECT_EQ(validate_stream_structure(workload.stream), "");
}

TEST(BaryonCorrelator, NucleonTwoPointExecutesNumerically) {
  redstar::CorrelatorSpec spec = redstar::make_nucleon_2pt();
  spec.time_slices = 2;
  spec.extent = 4;
  spec.batch = 1;
  const auto workload = redstar::build_workload(spec);
  const NumericResult r = execute_numerically(workload.stream);
  EXPECT_EQ(r.tasks_executed, workload.stats.contractions);
  EXPECT_GT(r.digest, 0.0);
}

TEST(BaryonCorrelator, NnSystemSchedulesOnCluster) {
  redstar::CorrelatorSpec spec = redstar::make_nn_system();
  spec.time_slices = 2;
  spec.extent = 8;
  spec.batch = 1;
  const auto workload = redstar::build_workload(spec);
  ASSERT_GT(workload.stats.contractions, 0u);

  ClusterConfig cluster;
  cluster.num_devices = 4;
  const auto entries = compare_schedulers(
      workload.stream, cluster,
      {SchedulerKind::kGroute, SchedulerKind::kMiccoNaive});
  for (const ComparisonEntry& e : entries) {
    EXPECT_EQ(e.result.metrics.total_flops, workload.stream.total_flops());
  }
}

TEST(BaryonCorrelator, MixedRankStreamSurvivesSerialization) {
  redstar::CorrelatorSpec spec = redstar::make_nucleon_2pt();
  spec.time_slices = 2;
  spec.extent = 4;
  spec.batch = 1;
  const auto workload = redstar::build_workload(spec);
  // Some tasks must involve rank-3 operands.
  bool saw_rank3_operand = false;
  for (const VectorWorkload& v : workload.stream.vectors) {
    for (const ContractionTask& t : v.tasks) {
      saw_rank3_operand |= t.a.rank == 3 || t.b.rank == 3;
    }
  }
  EXPECT_TRUE(saw_rank3_operand);
}

TEST(BaryonCorrelator, LookupByName) {
  EXPECT_EQ(redstar::real_function("nucleon_2pt").name, "nucleon_2pt");
  EXPECT_EQ(redstar::real_function("nn_system").name, "nn_system");
}

}  // namespace
}  // namespace micco
