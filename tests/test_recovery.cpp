// Restart recovery of the scheduling daemon (DESIGN.md §8): a second
// Server session replaying the journal of a first one. Finished jobs answer
// status/result again, interrupted jobs re-run with a byte-identical
// decision log and span trace, idempotent resubmits dedupe across the
// restart, and a torn journal tail is dropped and truncated before serving
// continues.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/names.hpp"
#include "service/client.hpp"
#include "service/journal.hpp"
#include "service/server.hpp"
#include "workload/serialize.hpp"
#include "workload/synthetic.hpp"

namespace micco::service {
namespace {

std::string test_socket_path(const std::string& tag) {
  const std::string path =
      "/tmp/micco_rec_" + std::to_string(::getpid()) + "_" + tag + ".sock";
  ::unlink(path.c_str());
  return path;
}

std::string tmp_file_path(const std::string& tag) {
  const std::string path =
      "/tmp/micco_rec_" + std::to_string(::getpid()) + "_" + tag;
  ::unlink(path.c_str());
  return path;
}

std::string workload_text(std::uint64_t seed, int vectors = 1,
                          int vector_size = 8) {
  SyntheticConfig cfg;
  cfg.num_vectors = vectors;
  cfg.vector_size = vector_size;
  cfg.seed = seed;
  std::ostringstream out;
  save_stream(generate_synthetic(cfg), out);
  return out.str();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Runs serve() on a background thread once start() succeeded.
class ServeSession {
 public:
  explicit ServeSession(ServerConfig config) : server_(std::move(config)) {}

  ~ServeSession() {
    if (thread_.joinable()) {
      server_.request_shutdown();
      thread_.join();
    }
  }

  bool begin(std::string* error) {
    if (!server_.start(error)) return false;
    thread_ = std::thread([this] { exit_code_ = server_.serve(); });
    return true;
  }

  int join() {
    thread_.join();
    return exit_code_;
  }

  Server& server() { return server_; }

 private:
  Server server_;
  std::thread thread_;
  int exit_code_ = -1;
};

obs::JsonValue wait_for_job(Client& client, std::uint64_t job_id) {
  for (;;) {
    std::string error;
    const auto reply = client.status(job_id, &error);
    EXPECT_TRUE(reply.has_value()) << error;
    if (!reply.has_value()) return obs::JsonValue();
    const std::string& state = reply->at("state").as_string();
    if (state != "QUEUED" && state != "RUNNING") return *reply;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

/// Kinds of the records currently in a journal file, in order.
std::vector<RecordKind> journal_kinds(const std::string& path) {
  std::vector<RecordKind> kinds;
  for (const JournalRecord& record : read_journal_file(path).records) {
    kinds.push_back(record.kind);
  }
  return kinds;
}

TEST(Recovery, FinishedJobsAnswerAfterRestart) {
  const std::string journal = tmp_file_path("fin.journal");
  std::string error;

  // Session 1: run one job to completion under the journal.
  {
    const std::string socket = test_socket_path("fin1");
    ServerConfig config;
    config.socket_path = socket;
    config.cluster.num_devices = 4;
    config.journal.path = journal;
    ServeSession session(std::move(config));
    ASSERT_TRUE(session.begin(&error)) << error;
    Client client;
    ASSERT_TRUE(client.connect(socket, &error)) << error;
    const auto submitted =
        client.submit("alice", "one", workload_text(11), &error);
    ASSERT_TRUE(submitted.has_value()) << error;
    ASSERT_TRUE(submitted->at("ok").as_bool()) << submitted->dump();
    EXPECT_EQ(wait_for_job(client, 1).at("state").as_string(), "DONE");
    ASSERT_TRUE(client.drain(&error).has_value()) << error;
    client.close();
    EXPECT_EQ(session.join(), 0);
  }

  // The journal recorded the whole lifecycle, write-ahead first.
  const std::vector<RecordKind> kinds = journal_kinds(journal);
  ASSERT_EQ(kinds.size(), 3u);
  EXPECT_EQ(kinds[0], RecordKind::kAdmitted);
  EXPECT_EQ(kinds[1], RecordKind::kDispatched);
  EXPECT_EQ(kinds[2], RecordKind::kFinished);

  // Session 2: replay. The finished job answers status and result without
  // re-running, flagged as replayed.
  {
    const std::string socket = test_socket_path("fin2");
    ServerConfig config;
    config.socket_path = socket;
    config.cluster.num_devices = 4;
    config.journal.path = journal;
    ServeSession session(std::move(config));
    ASSERT_TRUE(session.begin(&error)) << error;
    Client client;
    ASSERT_TRUE(client.connect(socket, &error)) << error;

    const auto status = client.status(1, &error);
    ASSERT_TRUE(status.has_value()) << error;
    ASSERT_TRUE(status->at("ok").as_bool()) << status->dump();
    EXPECT_EQ(status->at("state").as_string(), "DONE");
    EXPECT_TRUE(status->at("replayed").as_bool()) << status->dump();

    const auto result = client.result(1, &error);
    ASSERT_TRUE(result.has_value()) << error;
    ASSERT_TRUE(result->at("ok").as_bool()) << result->dump();
    EXPECT_TRUE(result->at("result").at("completed").as_bool());
    EXPECT_GT(result->at("result").at("makespan_s").as_double(), 0.0);

    const auto stats = client.stats(&error);
    ASSERT_TRUE(stats.has_value()) << error;
    EXPECT_EQ(stats->at("stats").at("completed").as_int(), 1);
    EXPECT_EQ(stats->at("stats").at("replayed").as_int(), 1);

    ASSERT_TRUE(client.drain(&error).has_value()) << error;
    client.close();
    EXPECT_EQ(session.join(), 0);
  }
}

TEST(Recovery, InterruptedJobRerunsByteIdentically) {
  // Reference: an uninterrupted session running the job, logging decisions
  // and spans.
  const std::string ref_decisions = tmp_file_path("ref.decisions");
  const std::string ref_spans = tmp_file_path("ref.spans");
  const std::string trace = Client::mint_trace_id("alice", "redo", 0);
  const std::string workload = workload_text(21, 2);
  std::string error;
  {
    const std::string socket = test_socket_path("ref");
    ServerConfig config;
    config.socket_path = socket;
    config.cluster.num_devices = 4;
    config.decisions_path = ref_decisions;
    config.spans_path = ref_spans;
    ServeSession session(std::move(config));
    ASSERT_TRUE(session.begin(&error)) << error;
    Client client;
    ASSERT_TRUE(client.connect(socket, &error)) << error;
    const auto submitted = client.submit("alice", "redo", workload, &error);
    ASSERT_TRUE(submitted.has_value()) << error;
    ASSERT_TRUE(submitted->at("ok").as_bool()) << submitted->dump();
    EXPECT_EQ(wait_for_job(client, 1).at("state").as_string(), "DONE");
    ASSERT_TRUE(client.drain(&error).has_value()) << error;
    client.close();
    EXPECT_EQ(session.join(), 0);
  }

  // Crash simulation: a journal holding the admitted (and dispatched)
  // records but no finished one — the daemon died mid-run.
  const std::string journal = tmp_file_path("redo.journal");
  {
    JournalRecord admitted;
    admitted.kind = RecordKind::kAdmitted;
    admitted.job_id = 1;
    admitted.tenant = "alice";
    admitted.name = "redo";
    admitted.trace_id = trace;
    admitted.workload_text = workload;
    JournalRecord dispatched;
    dispatched.kind = RecordKind::kDispatched;
    dispatched.job_id = 1;
    std::ofstream out(journal, std::ios::binary);
    out << encode_journal_line(admitted) << encode_journal_line(dispatched);
  }

  const std::string rec_decisions = tmp_file_path("rec.decisions");
  const std::string rec_spans = tmp_file_path("rec.spans");
  {
    const std::string socket = test_socket_path("rec");
    ServerConfig config;
    config.socket_path = socket;
    config.cluster.num_devices = 4;
    config.journal.path = journal;
    config.decisions_path = rec_decisions;
    config.spans_path = rec_spans;
    ServeSession session(std::move(config));
    ASSERT_TRUE(session.begin(&error)) << error;
    Client client;
    ASSERT_TRUE(client.connect(socket, &error)) << error;

    // The replayed job is visible immediately, flagged interrupted, and
    // runs to completion.
    const obs::JsonValue done = wait_for_job(client, 1);
    EXPECT_EQ(done.at("state").as_string(), "DONE");
    EXPECT_TRUE(done.at("interrupted").as_bool()) << done.dump();
    ASSERT_TRUE(client.drain(&error).has_value()) << error;
    client.close();
    EXPECT_EQ(session.join(), 0);
  }

  // Decision log: byte-identical to the uninterrupted session.
  const std::string ref_log = read_file(ref_decisions);
  ASSERT_FALSE(ref_log.empty());
  EXPECT_EQ(read_file(rec_decisions), ref_log);

  // Span trace: identical prefix plus exactly one journal-replay root span.
  const std::string ref_trace = read_file(ref_spans);
  const std::string rec_trace = read_file(rec_spans);
  ASSERT_GT(rec_trace.size(), ref_trace.size());
  EXPECT_EQ(rec_trace.compare(0, ref_trace.size(), ref_trace), 0);
  const std::string extra = rec_trace.substr(ref_trace.size());
  EXPECT_NE(extra.find(obs::names::kSpanJournalReplay), std::string::npos);
  EXPECT_EQ(extra.find('\n'), extra.size() - 1);

  // The journal now closes the story: ... dispatched, finished(DONE).
  const JournalReadResult replayed = read_journal_file(journal);
  EXPECT_FALSE(replayed.truncated) << replayed.note;
  ASSERT_GE(replayed.records.size(), 4u);
  EXPECT_EQ(replayed.records.back().kind, RecordKind::kFinished);
  EXPECT_EQ(replayed.records.back().state, "DONE");
}

TEST(Recovery, IdempotentResubmitRunsExactlyOnceAcrossRestart) {
  const std::string journal = tmp_file_path("idem.journal");
  std::string error;

  // Session 1: idempotent submit, then a same-session duplicate.
  {
    const std::string socket = test_socket_path("idem1");
    ServerConfig config;
    config.socket_path = socket;
    config.cluster.num_devices = 4;
    config.journal.path = journal;
    ServeSession session(std::move(config));
    ASSERT_TRUE(session.begin(&error)) << error;
    Client client;
    ASSERT_TRUE(client.connect(socket, &error)) << error;

    const auto first = client.submit_idempotent("alice", "once",
                                                workload_text(31), "tok-1",
                                                &error);
    ASSERT_TRUE(first.has_value()) << error;
    ASSERT_TRUE(first->at("ok").as_bool()) << first->dump();
    EXPECT_EQ(first->at("job_id").as_int(), 1);
    EXPECT_EQ(first->find("duplicate"), nullptr);

    const auto again = client.submit_idempotent("alice", "once",
                                                workload_text(31), "tok-1",
                                                &error);
    ASSERT_TRUE(again.has_value()) << error;
    ASSERT_TRUE(again->at("ok").as_bool()) << again->dump();
    EXPECT_EQ(again->at("job_id").as_int(), 1);
    EXPECT_TRUE(again->at("duplicate").as_bool());

    // Same token, different tenant → an independent job, not a duplicate.
    const auto other = client.submit_idempotent("bob", "once",
                                                workload_text(31), "tok-1",
                                                &error);
    ASSERT_TRUE(other.has_value()) << error;
    ASSERT_TRUE(other->at("ok").as_bool()) << other->dump();
    EXPECT_EQ(other->at("job_id").as_int(), 2);

    EXPECT_EQ(wait_for_job(client, 1).at("state").as_string(), "DONE");
    EXPECT_EQ(wait_for_job(client, 2).at("state").as_string(), "DONE");
    ASSERT_TRUE(client.drain(&error).has_value()) << error;
    client.close();
    EXPECT_EQ(session.join(), 0);
  }

  // Session 2: the dedup table is rebuilt from the journal, so the token
  // answers with the original, already-finished job — nothing re-runs.
  {
    const std::string socket = test_socket_path("idem2");
    ServerConfig config;
    config.socket_path = socket;
    config.cluster.num_devices = 4;
    config.journal.path = journal;
    ServeSession session(std::move(config));
    ASSERT_TRUE(session.begin(&error)) << error;
    Client client;
    ASSERT_TRUE(client.connect(socket, &error)) << error;

    const auto resubmit = client.submit_idempotent("alice", "once",
                                                   workload_text(31), "tok-1",
                                                   &error);
    ASSERT_TRUE(resubmit.has_value()) << error;
    ASSERT_TRUE(resubmit->at("ok").as_bool()) << resubmit->dump();
    EXPECT_EQ(resubmit->at("job_id").as_int(), 1);
    EXPECT_TRUE(resubmit->at("duplicate").as_bool());
    EXPECT_EQ(resubmit->at("state").as_string(), "DONE");
    EXPECT_TRUE(resubmit->at("replayed").as_bool());

    const auto stats = client.stats(&error);
    ASSERT_TRUE(stats.has_value()) << error;
    EXPECT_EQ(stats->at("stats").at("duplicates").as_int(), 1);
    ASSERT_TRUE(client.drain(&error).has_value()) << error;
    client.close();
    EXPECT_EQ(session.join(), 0);
  }

  // Exactly-once across both sessions: one dispatch of job 1, one DONE
  // finished record for it, in the whole journal.
  int dispatched_job1 = 0;
  int finished_job1 = 0;
  for (const JournalRecord& record : read_journal_file(journal).records) {
    if (record.job_id != 1) continue;
    if (record.kind == RecordKind::kDispatched) ++dispatched_job1;
    if (record.kind == RecordKind::kFinished) ++finished_job1;
  }
  EXPECT_EQ(dispatched_job1, 1);
  EXPECT_EQ(finished_job1, 1);
}

TEST(Recovery, OrphanedFinishedRecordNeverSettlesALaterAdmission) {
  // A finished record positioned BEFORE its job's admitted record is an
  // orphan (e.g. a crash wedged between a shutdown-cancel append and the
  // admission append it raced, followed by the id being re-issued). Replay
  // must not let it settle the admitted job: the job re-runs as
  // interrupted instead of being answered with a state it never reached.
  const std::string journal = tmp_file_path("orphan.journal");
  {
    JournalRecord orphan;
    orphan.kind = RecordKind::kFinished;
    orphan.job_id = 1;
    orphan.state = "CANCELLED";
    JournalRecord admitted;
    admitted.kind = RecordKind::kAdmitted;
    admitted.job_id = 1;
    admitted.tenant = "alice";
    admitted.name = "orphaned";
    admitted.workload_text = workload_text(51);
    std::ofstream out(journal, std::ios::binary);
    out << encode_journal_line(orphan) << encode_journal_line(admitted);
  }

  std::string error;
  {
    const std::string socket = test_socket_path("orphan");
    ServerConfig config;
    config.socket_path = socket;
    config.cluster.num_devices = 4;
    config.journal.path = journal;
    ServeSession session(std::move(config));
    ASSERT_TRUE(session.begin(&error)) << error;
    Client client;
    ASSERT_TRUE(client.connect(socket, &error)) << error;
    const obs::JsonValue done = wait_for_job(client, 1);
    EXPECT_EQ(done.at("state").as_string(), "DONE") << done.dump();
    EXPECT_TRUE(done.at("interrupted").as_bool()) << done.dump();
    EXPECT_EQ(done.find("replayed"), nullptr) << done.dump();
    ASSERT_TRUE(client.drain(&error).has_value()) << error;
    client.close();
    EXPECT_EQ(session.join(), 0);
  }

  // A finished record that FOLLOWS the admission settles it as usual: the
  // re-run above appended dispatched + finished(DONE), so a second replay
  // answers DONE without re-running.
  {
    const std::string socket = test_socket_path("orphan2");
    ServerConfig config;
    config.socket_path = socket;
    config.cluster.num_devices = 4;
    config.journal.path = journal;
    ServeSession session(std::move(config));
    ASSERT_TRUE(session.begin(&error)) << error;
    Client client;
    ASSERT_TRUE(client.connect(socket, &error)) << error;
    const auto status = client.status(1, &error);
    ASSERT_TRUE(status.has_value()) << error;
    EXPECT_EQ(status->at("state").as_string(), "DONE") << status->dump();
    EXPECT_TRUE(status->at("replayed").as_bool()) << status->dump();
    ASSERT_TRUE(client.drain(&error).has_value()) << error;
    client.close();
    EXPECT_EQ(session.join(), 0);
  }
}

TEST(Recovery, TornTailIsDroppedAndServingContinues) {
  const std::string journal = tmp_file_path("torn.journal");
  std::string error;

  // An admitted record followed by a torn half-append.
  JournalRecord admitted;
  admitted.kind = RecordKind::kAdmitted;
  admitted.job_id = 1;
  admitted.tenant = "alice";
  admitted.name = "torn";
  admitted.workload_text = workload_text(41);
  const std::string intact = encode_journal_line(admitted);
  {
    std::ofstream out(journal, std::ios::binary);
    JournalRecord half;
    half.kind = RecordKind::kDispatched;
    half.job_id = 1;
    out << intact << encode_journal_line(half).substr(0, 20);
  }

  {
    const std::string socket = test_socket_path("torn");
    ServerConfig config;
    config.socket_path = socket;
    config.cluster.num_devices = 4;
    config.journal.path = journal;
    ServeSession session(std::move(config));
    ASSERT_TRUE(session.begin(&error)) << error;
    Client client;
    ASSERT_TRUE(client.connect(socket, &error)) << error;
    const obs::JsonValue done = wait_for_job(client, 1);
    EXPECT_EQ(done.at("state").as_string(), "DONE");
    EXPECT_TRUE(done.at("interrupted").as_bool()) << done.dump();
    ASSERT_TRUE(client.drain(&error).has_value()) << error;
    client.close();
    EXPECT_EQ(session.join(), 0);
  }

  // The tail was truncated before appending: the journal reads back clean,
  // with the re-run's records following the intact prefix directly.
  const JournalReadResult read = read_journal_file(journal);
  EXPECT_FALSE(read.truncated) << read.note;
  ASSERT_EQ(read.records.size(), 3u);
  EXPECT_EQ(read.records[0].kind, RecordKind::kAdmitted);
  EXPECT_EQ(read.records[1].kind, RecordKind::kDispatched);
  EXPECT_EQ(read.records[2].kind, RecordKind::kFinished);
  EXPECT_EQ(read.records[2].state, "DONE");
}

}  // namespace
}  // namespace micco::service
