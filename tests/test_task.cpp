#include "workload/task.hpp"

#include <gtest/gtest.h>

namespace micco {
namespace {

TensorDesc make_desc(TensorId id, std::int64_t extent = 8,
                     std::int64_t batch = 2, int rank = 2) {
  return TensorDesc{id, rank, extent, batch};
}

ContractionTask make_task(TensorId a, TensorId b, TensorId out,
                          std::int64_t extent = 8, std::int64_t batch = 2) {
  ContractionTask t;
  t.a = make_desc(a, extent, batch);
  t.b = make_desc(b, extent, batch);
  t.out = make_desc(out, extent, batch);
  return t;
}

TEST(TensorDesc, BytesRank2) {
  EXPECT_EQ(make_desc(0, 8, 2).bytes(), 2u * 64u * sizeof(cplx));
}

TEST(TensorDesc, BytesRank3) {
  EXPECT_EQ(make_desc(0, 8, 2, 3).bytes(), 2u * 512u * sizeof(cplx));
}

TEST(TensorDesc, InvalidByDefault) {
  TensorDesc d;
  EXPECT_FALSE(d.valid());
  EXPECT_TRUE(make_desc(0).valid());
}

TEST(ContractionTask, FlopsUseOperandShape) {
  const ContractionTask t = make_task(0, 1, 2, 8, 2);
  EXPECT_EQ(t.flops(), 8ull * 2 * 8 * 8 * 8);
}

TEST(VectorWorkload, TensorCountIsTwoPerTask) {
  VectorWorkload v;
  v.tasks = {make_task(0, 1, 10), make_task(2, 3, 11)};
  EXPECT_EQ(v.tensor_count(), 4);
}

TEST(VectorWorkload, UniqueInputsDeduplicates) {
  VectorWorkload v;
  v.tasks = {make_task(0, 1, 10), make_task(1, 2, 11), make_task(0, 2, 12)};
  const auto unique = v.unique_inputs();
  EXPECT_EQ(unique.size(), 3u);
  EXPECT_TRUE(unique.contains(0));
  EXPECT_TRUE(unique.contains(1));
  EXPECT_TRUE(unique.contains(2));
}

TEST(VectorWorkload, UniqueInputBytesCountsEachTensorOnce) {
  VectorWorkload v;
  v.tasks = {make_task(0, 1, 10), make_task(0, 1, 11)};
  const std::uint64_t per_tensor = make_desc(0).bytes();
  EXPECT_EQ(v.unique_input_bytes(), 2 * per_tensor);
}

TEST(VectorWorkload, TotalFlopsSumsTasks) {
  VectorWorkload v;
  v.tasks = {make_task(0, 1, 10), make_task(2, 3, 11)};
  EXPECT_EQ(v.total_flops(), 2 * v.tasks[0].flops());
}

TEST(VectorWorkload, OutputBytesSumsAllOutputs) {
  VectorWorkload v;
  v.tasks = {make_task(0, 1, 10), make_task(2, 3, 11)};
  EXPECT_EQ(v.output_bytes(), 2 * make_desc(10).bytes());
}

TEST(WorkloadStream, TotalDistinctBytesSpansVectors) {
  WorkloadStream s;
  VectorWorkload v1, v2;
  v1.tasks = {make_task(0, 1, 10)};
  v2.tasks = {make_task(0, 2, 11)};  // tensor 0 repeats, not double-counted
  s.vectors = {v1, v2};
  const std::uint64_t per_tensor = make_desc(0).bytes();
  // Distinct: inputs 0,1,2 + outputs 10,11 = 5 tensors.
  EXPECT_EQ(s.total_distinct_bytes(), 5 * per_tensor);
}

TEST(WorkloadStream, TotalFlopsSpansVectors) {
  WorkloadStream s;
  VectorWorkload v;
  v.tasks = {make_task(0, 1, 10)};
  s.vectors = {v, v};
  EXPECT_EQ(s.total_flops(), 2 * v.tasks[0].flops());
}

TEST(DataDistribution, Names) {
  EXPECT_STREQ(to_string(DataDistribution::kUniform), "Uniform");
  EXPECT_STREQ(to_string(DataDistribution::kGaussian), "Gaussian");
}

}  // namespace
}  // namespace micco
