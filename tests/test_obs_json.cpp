#include "obs/json.hpp"

#include <gtest/gtest.h>

namespace micco::obs {
namespace {

TEST(ObsJson, ScalarKindsAndAccessors) {
  EXPECT_TRUE(JsonValue().is_null());
  EXPECT_EQ(JsonValue(true).as_bool(), true);
  EXPECT_EQ(JsonValue(std::int64_t{-7}).as_int(), -7);
  EXPECT_DOUBLE_EQ(JsonValue(2.5).as_double(), 2.5);
  EXPECT_EQ(JsonValue("hi").as_string(), "hi");
  // as_double accepts both number kinds.
  EXPECT_DOUBLE_EQ(JsonValue(3).as_double(), 3.0);
}

TEST(ObsJson, ObjectKeepsInsertionOrder) {
  JsonValue obj = JsonValue::object();
  obj.set("zeta", 1);
  obj.set("alpha", 2);
  obj.set("mid", 3);
  EXPECT_EQ(obj.dump(), "{\"zeta\":1,\"alpha\":2,\"mid\":3}");
  // Overwrite keeps first-insertion position.
  obj.set("alpha", 9);
  EXPECT_EQ(obj.dump(), "{\"zeta\":1,\"alpha\":9,\"mid\":3}");
}

TEST(ObsJson, NullAutoPromotesOnSetAndPushBack) {
  JsonValue obj;
  obj.set("k", "v");
  EXPECT_EQ(obj.kind(), JsonValue::Kind::kObject);
  JsonValue arr;
  arr.push_back(1);
  arr.push_back(2);
  EXPECT_EQ(arr.dump(), "[1,2]");
}

TEST(ObsJson, FindAndAt) {
  JsonValue obj = JsonValue::object();
  obj.set("present", 42);
  ASSERT_NE(obj.find("present"), nullptr);
  EXPECT_EQ(obj.find("present")->as_int(), 42);
  EXPECT_EQ(obj.find("absent"), nullptr);
  EXPECT_EQ(obj.at("present").as_int(), 42);
  EXPECT_EQ(JsonValue(1).find("x"), nullptr);  // non-object: no members
}

TEST(ObsJson, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(ObsJson, ControlBytesRoundTripAndStayOnOneLine) {
  // NDJSON framing (service/protocol.hpp) relies on every control byte —
  // 0x00 through 0x1F — surviving a dump/parse round trip without ever
  // emitting a literal newline or other control character into the output.
  for (int byte = 0x00; byte <= 0x1F; ++byte) {
    const std::string raw =
        "pre" + std::string(1, static_cast<char>(byte)) + "post";
    JsonValue doc = JsonValue::object();
    doc.set("s", raw);
    const std::string text = doc.dump();
    for (const char c : text) {
      EXPECT_GE(static_cast<unsigned char>(c), 0x20)
          << "dump leaked control byte " << byte << " into the frame";
    }
    std::string error;
    const auto parsed = parse_json(text, &error);
    ASSERT_TRUE(parsed.has_value()) << "byte " << byte << ": " << error;
    EXPECT_EQ(parsed->at("s").as_string(), raw) << "byte " << byte;
  }
}

TEST(ObsJson, NumberFormattingIsDeterministic) {
  EXPECT_EQ(json_number(1.0), "1");
  EXPECT_EQ(json_number(-3.0), "-3");
  EXPECT_EQ(JsonValue(0.5).dump(), "0.5");
  // Round-trips the shortest form.
  const std::string text = json_number(0.1);
  EXPECT_DOUBLE_EQ(std::stod(text), 0.1);
}

TEST(ObsJson, DumpParseRoundTrip) {
  JsonValue doc = JsonValue::object();
  doc.set("name", "run");
  doc.set("n", 3);
  doc.set("ratio", 1.25);
  doc.set("ok", true);
  doc.set("missing", JsonValue());
  JsonValue arr = JsonValue::array();
  arr.push_back(1);
  arr.push_back("two");
  JsonValue nested = JsonValue::object();
  nested.set("deep", -1);
  arr.push_back(std::move(nested));
  doc.set("items", std::move(arr));

  std::string error;
  const auto parsed = parse_json(doc.dump(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(*parsed, doc);
  // Pretty output parses back to the same document too.
  const auto reparsed = parse_json(doc.dump_pretty(), &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  EXPECT_EQ(*reparsed, doc);
}

TEST(ObsJson, ParseRejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(parse_json("{", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(parse_json("[1,]", &error).has_value());
  EXPECT_FALSE(parse_json("{\"a\":1} trailing", &error).has_value());
  EXPECT_FALSE(parse_json("nul", &error).has_value());
  EXPECT_FALSE(parse_json("\"unterminated", &error).has_value());
}

TEST(ObsJson, NumericEqualityCrossesIntAndDouble) {
  EXPECT_EQ(JsonValue(2), JsonValue(2.0));
  EXPECT_FALSE(JsonValue(2) == JsonValue(2.5));
  EXPECT_FALSE(JsonValue(2) == JsonValue("2"));
}

}  // namespace
}  // namespace micco::obs
