// Unit tests for the fault model: RetryPolicy arithmetic, FaultPlan
// parsing/validation, and FaultInjector runtime behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"
#include "faults/retry.hpp"

namespace micco {
namespace {

// ---------------------------------------------------------------- RetryPolicy

TEST(RetryPolicy, BackoffGrowsExponentially) {
  RetryPolicy p;
  p.base_backoff_s = 1e-4;
  p.multiplier = 2.0;
  p.max_backoff_s = 1.0;
  EXPECT_DOUBLE_EQ(p.backoff(1), 1e-4);
  EXPECT_DOUBLE_EQ(p.backoff(2), 2e-4);
  EXPECT_DOUBLE_EQ(p.backoff(3), 4e-4);
  EXPECT_DOUBLE_EQ(p.backoff(4), 8e-4);
}

TEST(RetryPolicy, BackoffCappedAtMax) {
  RetryPolicy p;
  p.base_backoff_s = 0.05;
  p.multiplier = 2.0;
  p.max_backoff_s = 0.1;
  EXPECT_DOUBLE_EQ(p.backoff(1), 0.05);
  EXPECT_DOUBLE_EQ(p.backoff(2), 0.1);
  EXPECT_DOUBLE_EQ(p.backoff(10), 0.1);
}

TEST(RetryPolicy, BackoffSaturatesAtHighAttemptCounts) {
  // attempt 64 would compute base * 2^63 — far past double's comfort zone
  // with a naive loop; the closed form must clamp to max_backoff_s and stay
  // finite at any attempt count.
  RetryPolicy p;
  p.base_backoff_s = 1e-4;
  p.multiplier = 2.0;
  p.max_backoff_s = 0.1;
  EXPECT_DOUBLE_EQ(p.backoff(64), 0.1);
  EXPECT_DOUBLE_EQ(p.backoff(1 << 20), 0.1);
  EXPECT_DOUBLE_EQ(p.backoff(std::numeric_limits<int>::max()), 0.1);
  EXPECT_TRUE(std::isfinite(p.backoff(4096)));
}

TEST(RetryPolicy, BackoffDegenerateBaseAndMultiplier) {
  // base 0: every backoff is zero, at any attempt, in O(1).
  RetryPolicy zero;
  zero.base_backoff_s = 0.0;
  EXPECT_DOUBLE_EQ(zero.backoff(1), 0.0);
  EXPECT_DOUBLE_EQ(zero.backoff(1 << 30), 0.0);

  // multiplier 1: constant backoff, no growth, no loop.
  RetryPolicy flat;
  flat.base_backoff_s = 5e-3;
  flat.multiplier = 1.0;
  flat.max_backoff_s = 0.1;
  EXPECT_DOUBLE_EQ(flat.backoff(1), 5e-3);
  EXPECT_DOUBLE_EQ(flat.backoff(1 << 30), 5e-3);
}

TEST(RetryPolicy, DefaultsAreValid) {
  EXPECT_TRUE(RetryPolicy{}.validate().empty());
}

TEST(RetryPolicy, ValidateRejectsBadFields) {
  RetryPolicy p;
  p.max_attempts = 0;
  EXPECT_FALSE(p.validate().empty());

  p = RetryPolicy{};
  p.base_backoff_s = -1.0;
  EXPECT_FALSE(p.validate().empty());

  p = RetryPolicy{};
  p.multiplier = 0.5;
  EXPECT_FALSE(p.validate().empty());

  p = RetryPolicy{};
  p.base_backoff_s = 0.5;
  p.max_backoff_s = 0.1;
  EXPECT_FALSE(p.validate().empty());
}

// ------------------------------------------------------------------ FaultPlan

FaultPlan parse_ok(const std::string& text) {
  std::istringstream in(text);
  std::string error;
  const std::optional<FaultPlan> plan = parse_fault_plan(in, &error);
  EXPECT_TRUE(plan.has_value()) << error;
  return plan.value_or(FaultPlan{});
}

TEST(FaultPlan, ParsesAllDirectives) {
  const FaultPlan plan = parse_ok(
      "# a comment\n"
      "\n"
      "fail 1 0.5\n"
      "transfer-faults 0.25 99\n"
      "slowdown 2 1.5 0.1\n"
      "capacity-loss 0 4096 0.2\n");
  ASSERT_EQ(plan.device_failures.size(), 1u);
  EXPECT_EQ(plan.device_failures[0].device, 1);
  EXPECT_DOUBLE_EQ(plan.device_failures[0].time_s, 0.5);
  EXPECT_DOUBLE_EQ(plan.transfer.probability, 0.25);
  EXPECT_EQ(plan.transfer.seed, 99u);
  ASSERT_EQ(plan.slowdowns.size(), 1u);
  EXPECT_EQ(plan.slowdowns[0].device, 2);
  EXPECT_DOUBLE_EQ(plan.slowdowns[0].factor, 1.5);
  EXPECT_DOUBLE_EQ(plan.slowdowns[0].from_time_s, 0.1);
  ASSERT_EQ(plan.capacity_losses.size(), 1u);
  EXPECT_EQ(plan.capacity_losses[0].bytes, 4096u);
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlan, OptionalFieldsKeepDefaults) {
  const FaultPlan plan = parse_ok(
      "transfer-faults 0.1\n"
      "slowdown 0 2.0\n");
  EXPECT_EQ(plan.transfer.seed, TransferFaultModel{}.seed);
  EXPECT_DOUBLE_EQ(plan.slowdowns[0].from_time_s, 0.0);
}

TEST(FaultPlan, EmptyInputIsEmptyPlan) {
  const FaultPlan plan = parse_ok("# only comments\n\n");
  EXPECT_TRUE(plan.empty());
}

TEST(FaultPlan, MalformedLinesReportLineNumber) {
  const char* bad[] = {
      "fail 1\n",                // missing time
      "transfer-faults\n",       // missing probability
      "slowdown 0\n",            // missing factor
      "capacity-loss 0 1024\n",  // missing time
      "frobnicate 1 2\n",        // unknown directive
  };
  for (const char* text : bad) {
    std::istringstream in(text);
    std::string error;
    EXPECT_FALSE(parse_fault_plan(in, &error).has_value()) << text;
    EXPECT_NE(error.find("line 1"), std::string::npos) << error;
  }
}

TEST(FaultPlan, ValidateAcceptsConsistentPlan) {
  const FaultPlan plan = parse_ok(
      "fail 3 0.5\n"
      "transfer-faults 0.9\n"
      "slowdown 0 4.0\n"
      "capacity-loss 1 1024 0.0\n");
  EXPECT_EQ(plan.validate(4), "");
}

TEST(FaultPlan, ValidateRejectsBadEntries) {
  EXPECT_NE(parse_ok("fail 4 0.5\n").validate(4), "");     // device range
  EXPECT_NE(parse_ok("fail -1 0.5\n").validate(4), "");    // negative device
  EXPECT_NE(parse_ok("fail 0 -0.5\n").validate(4), "");    // negative time
  EXPECT_NE(parse_ok("transfer-faults 1.0\n").validate(4),
            "");                                           // p == 1 forbidden
  EXPECT_NE(parse_ok("slowdown 0 0.5\n").validate(4), "");  // factor < 1
  EXPECT_NE(parse_ok("capacity-loss 0 0 0.1\n").validate(4),
            "");                                           // zero bytes
  EXPECT_NE(parse_ok("fail 0 0.1\nfail 0 0.2\n").validate(4),
            "");                                           // duplicate device
}

TEST(FaultPlan, SummaryMentionsEveryEvent) {
  const FaultPlan plan = parse_ok(
      "fail 1 0.5\n"
      "transfer-faults 0.25\n");
  const std::string s = plan.summary();
  EXPECT_NE(s.find("fail device 1"), std::string::npos);
  EXPECT_NE(s.find("transfer faults"), std::string::npos);
  EXPECT_NE(FaultPlan{}.summary().find("empty plan"), std::string::npos);
}

TEST(FaultPlan, LoadFileReportsMissingPath) {
  std::string error;
  EXPECT_FALSE(
      load_fault_plan_file("/nonexistent/plan.txt", &error).has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

// -------------------------------------------------------------- FaultInjector

TEST(FaultInjector, EmptyPlanIsInactiveAndNeverFaults) {
  FaultInjector inj{FaultPlan{}};
  EXPECT_FALSE(inj.active());
  EXPECT_FALSE(inj.failure_time(0).has_value());
  EXPECT_DOUBLE_EQ(inj.slowdown(0, 100.0), 1.0);
  EXPECT_EQ(inj.take_capacity_loss(0, 100.0), 0u);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(inj.transfer_attempt_fails());
}

TEST(FaultInjector, FailureTimeConsumedByMarkFailed) {
  FaultPlan plan;
  plan.device_failures.push_back(DeviceFailure{2, 0.75});
  FaultInjector inj{plan};
  EXPECT_TRUE(inj.active());
  ASSERT_TRUE(inj.failure_time(2).has_value());
  EXPECT_DOUBLE_EQ(*inj.failure_time(2), 0.75);
  EXPECT_FALSE(inj.failure_time(0).has_value());
  inj.mark_failed(2);
  EXPECT_FALSE(inj.failure_time(2).has_value());
}

TEST(FaultInjector, SlowdownRespectsOnsetAndCompounds) {
  FaultPlan plan;
  plan.slowdowns.push_back(DeviceSlowdown{0, 2.0, 1.0});
  plan.slowdowns.push_back(DeviceSlowdown{0, 3.0, 2.0});
  plan.slowdowns.push_back(DeviceSlowdown{1, 10.0, 0.0});
  FaultInjector inj{plan};
  EXPECT_DOUBLE_EQ(inj.slowdown(0, 0.5), 1.0);   // before onset
  EXPECT_DOUBLE_EQ(inj.slowdown(0, 1.5), 2.0);   // first entry only
  EXPECT_DOUBLE_EQ(inj.slowdown(0, 2.5), 6.0);   // overlapping compound
  EXPECT_DOUBLE_EQ(inj.slowdown(1, 0.0), 10.0);  // from t=0
  EXPECT_DOUBLE_EQ(inj.slowdown(2, 5.0), 1.0);   // untouched device
}

TEST(FaultInjector, CapacityLossConsumedOnce) {
  FaultPlan plan;
  plan.capacity_losses.push_back(CapacityLoss{0, 1024, 1.0});
  plan.capacity_losses.push_back(CapacityLoss{0, 512, 2.0});
  FaultInjector inj{plan};
  EXPECT_EQ(inj.take_capacity_loss(0, 0.5), 0u);     // nothing due yet
  EXPECT_EQ(inj.take_capacity_loss(0, 1.5), 1024u);  // first entry due
  EXPECT_EQ(inj.take_capacity_loss(0, 1.5), 0u);     // consumed
  EXPECT_EQ(inj.take_capacity_loss(0, 3.0), 512u);   // second entry due
  EXPECT_EQ(inj.take_capacity_loss(1, 3.0), 0u);     // other device clean
}

TEST(FaultInjector, TransferDrawsAreSeedDeterministic) {
  FaultPlan plan;
  plan.transfer.probability = 0.3;
  plan.transfer.seed = 1234;
  FaultInjector a{plan};
  FaultInjector b{plan};
  int faults = 0;
  for (int i = 0; i < 500; ++i) {
    const bool fa = a.transfer_attempt_fails();
    EXPECT_EQ(fa, b.transfer_attempt_fails());
    faults += fa ? 1 : 0;
  }
  // ~30% of 500 draws; generous bounds, just not degenerate.
  EXPECT_GT(faults, 75);
  EXPECT_LT(faults, 300);
}

TEST(FaultInjector, HighProbabilityDrawsDoFail) {
  FaultPlan plan;
  plan.transfer.probability = 0.999;
  FaultInjector inj{plan};
  int faults = 0;
  for (int i = 0; i < 100; ++i) faults += inj.transfer_attempt_fails() ? 1 : 0;
  EXPECT_GT(faults, 90);
}

}  // namespace
}  // namespace micco
