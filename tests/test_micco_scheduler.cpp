#include "sched/micco_scheduler.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "obs/events.hpp"

namespace micco {
namespace {

TensorDesc make_desc(TensorId id, std::int64_t extent = 16) {
  return TensorDesc{id, 2, extent, 1};
}

ContractionTask make_task(TensorId a, TensorId b, TensorId out,
                          std::int64_t extent = 16) {
  ContractionTask t;
  t.a = make_desc(a, extent);
  t.b = make_desc(b, extent);
  t.out = make_desc(out, extent);
  return t;
}

VectorWorkload make_vector(std::initializer_list<ContractionTask> tasks) {
  VectorWorkload v;
  v.tasks = tasks;
  return v;
}

ClusterConfig cluster_of(int devices, std::uint64_t capacity = 8u << 20) {
  ClusterConfig c;
  c.num_devices = devices;
  c.device_capacity_bytes = capacity;
  return c;
}

TEST(MiccoScheduler, RequiresBeginVector) {
  MiccoScheduler sched;
  ClusterSimulator sim(cluster_of(2));
  EXPECT_DEATH((void)sched.assign(make_task(0, 1, 2), sim),
               "begin_vector");
}

TEST(MiccoScheduler, BalanceNumIsTensorShare) {
  MiccoScheduler sched;
  ClusterSimulator sim(cluster_of(2));
  // 4 tasks -> 8 tensor slots over 2 devices -> balanceNum 4.
  const VectorWorkload v =
      make_vector({make_task(0, 1, 10), make_task(2, 3, 11),
                   make_task(4, 5, 12), make_task(6, 7, 13)});
  sched.begin_vector(v, sim);
  EXPECT_EQ(sched.balance_num(), 4);
}

TEST(MiccoScheduler, BalanceNumFlooredAtOne) {
  MiccoScheduler sched;
  ClusterSimulator sim(cluster_of(8));
  const VectorWorkload v = make_vector({make_task(0, 1, 10)});
  sched.begin_vector(v, sim);
  EXPECT_EQ(sched.balance_num(), 1);
}

TEST(MiccoScheduler, TwoRepeatedSamePairGoesToHoldingDevice) {
  MiccoScheduler sched;
  ClusterSimulator sim(cluster_of(2));
  const VectorWorkload v0 =
      make_vector({make_task(0, 1, 10), make_task(2, 3, 11)});
  sched.begin_vector(v0, sim);
  for (const ContractionTask& t : v0.tasks) {
    sim.execute(t, sched.assign(t, sim));
  }
  const DeviceId home = sim.devices_holding(0).front();

  // Next vector re-presents (0, 1): the data-centric policy must send it to
  // the same device.
  const VectorWorkload v1 =
      make_vector({make_task(0, 1, 12), make_task(4, 5, 13)});
  sched.begin_vector(v1, sim);
  EXPECT_EQ(sched.assign(v1.tasks[0], sim), home);
}

TEST(MiccoScheduler, OneRepeatedPairPrefersHoldingDevice) {
  MiccoSchedulerOptions opts;
  opts.bounds = ReuseBounds{2, 2, 2};
  MiccoScheduler sched(opts);
  ClusterSimulator sim(cluster_of(2));
  const VectorWorkload v0 = make_vector({make_task(0, 1, 10)});
  sched.begin_vector(v0, sim);
  sim.execute(v0.tasks[0], sched.assign(v0.tasks[0], sim));
  const DeviceId home = sim.devices_holding(0).front();

  const VectorWorkload v1 = make_vector({make_task(0, 99, 12)});
  sched.begin_vector(v1, sim);
  EXPECT_EQ(sched.assign(v1.tasks[0], sim), home);
}

TEST(MiccoScheduler, NaiveBoundsForceSpread) {
  // With zero bounds and balanceNum = 2 (vector of 4 slots on 2 devices),
  // no device may take more than 2 distinct tensors, so the two pairs land
  // on different devices even when reuse says otherwise.
  MiccoScheduler sched;  // naive bounds
  ClusterSimulator sim(cluster_of(2));

  const VectorWorkload warm =
      make_vector({make_task(0, 1, 10), make_task(2, 3, 11)});
  sched.begin_vector(warm, sim);
  for (const ContractionTask& t : warm.tasks) {
    sim.execute(t, sched.assign(t, sim));
  }
  // All four tensors now live somewhere; re-present them as one vector.
  const VectorWorkload v =
      make_vector({make_task(0, 1, 12), make_task(2, 3, 13)});
  sched.begin_vector(v, sim);
  const DeviceId d0 = sched.assign(v.tasks[0], sim);
  sim.execute(v.tasks[0], d0);
  const DeviceId d1 = sched.assign(v.tasks[1], sim);
  sim.execute(v.tasks[1], d1);
  EXPECT_EQ(sched.assigned_count(d0), 2);
  EXPECT_EQ(sched.assigned_count(d1), 2);
}

TEST(MiccoScheduler, ReuseBoundAllowsImbalanceForReuse) {
  // Same situation, but bound 2 on the TwoRepeatedSame tier lets one device
  // absorb all four tensors when it already holds them.
  ClusterSimulator sim(cluster_of(2));
  MiccoSchedulerOptions warm_opts;
  warm_opts.bounds = ReuseBounds{2, 2, 2};
  MiccoScheduler warm_sched(warm_opts);
  const VectorWorkload warm =
      make_vector({make_task(0, 1, 10), make_task(2, 3, 11)});
  warm_sched.begin_vector(warm, sim);
  // Pin both pairs onto device 0 by executing manually.
  sim.execute(warm.tasks[0], 0);
  sim.execute(warm.tasks[1], 0);

  MiccoSchedulerOptions opts;
  opts.bounds = ReuseBounds{2, 0, 0};
  MiccoScheduler sched(opts);
  const VectorWorkload v =
      make_vector({make_task(0, 1, 12), make_task(2, 3, 13)});
  sched.begin_vector(v, sim);
  const DeviceId d0 = sched.assign(v.tasks[0], sim);
  sim.execute(v.tasks[0], d0);
  const DeviceId d1 = sched.assign(v.tasks[1], sim);
  sim.execute(v.tasks[1], d1);
  EXPECT_EQ(d0, 0);
  EXPECT_EQ(d1, 0);  // bound 2 permits 2 extra tensors above balanceNum 2
}

TEST(MiccoScheduler, ComputeCentricBalancesFreshPairs) {
  MiccoScheduler sched;
  ClusterSimulator sim(cluster_of(4));
  const VectorWorkload v =
      make_vector({make_task(0, 1, 10), make_task(2, 3, 11),
                   make_task(4, 5, 12), make_task(6, 7, 13)});
  sched.begin_vector(v, sim);
  std::set<DeviceId> used;
  for (const ContractionTask& t : v.tasks) {
    const DeviceId d = sched.assign(t, sim);
    sim.execute(t, d);
    used.insert(d);
  }
  EXPECT_EQ(used.size(), 4u);  // all-new pairs spread across all devices
}

TEST(MiccoScheduler, EvictionSensitivePolicyAvoidsFullDevice) {
  // Tensor 0 is replicated on both devices, so both enter candiQueue for
  // the incoming OneRepeated pair; device 0 is nearly full (placing there
  // would force evictions) while device 1 has headroom, so the memory
  // policy must pick device 1 (Alg. 2: most available memory in the queue).
  const std::uint64_t tensor_bytes = make_desc(0).bytes();
  ClusterSimulator sim(cluster_of(2, 6 * tensor_bytes));
  sim.execute(make_task(0, 1, 2), 0);   // device 0: tensors 0, 1, 2
  sim.execute(make_task(3, 4, 5), 0);   // device 0: full (6 tensors)
  sim.execute(make_task(0, 9, 10), 1);  // device 1: replica of 0 + 2 more

  MiccoSchedulerOptions opts;
  opts.bounds = ReuseBounds{4, 4, 4};
  MiccoScheduler sched(opts);
  const VectorWorkload v = make_vector({make_task(0, 7, 20)});
  sched.begin_vector(v, sim);
  // Placing on device 0 needs 2 new tensor frames but it is full; device 1
  // has 3 free.
  EXPECT_EQ(sched.assign(v.tasks[0], sim), 1);
}

TEST(MiccoScheduler, EvictionPolicyCanBeDisabled) {
  const std::uint64_t tensor_bytes = make_desc(0).bytes();
  ClusterSimulator sim(cluster_of(2, 4 * tensor_bytes));
  sim.execute(make_task(0, 1, 2), 0);

  MiccoSchedulerOptions opts;
  opts.bounds = ReuseBounds{2, 2, 2};
  opts.eviction_sensitive = false;
  MiccoScheduler sched(opts);
  const VectorWorkload v = make_vector({make_task(0, 7, 20)});
  sched.begin_vector(v, sim);
  // Without the memory policy, the data-centric choice wins despite the
  // eviction it will cause.
  EXPECT_EQ(sched.assign(v.tasks[0], sim), 0);
}

TEST(MiccoScheduler, FallbackPlacesPairWhenAllBoundsExceeded) {
  // One device, zero bounds, many pairs: counts blow past balanceNum but
  // every pair must still land somewhere.
  MiccoScheduler sched;
  ClusterSimulator sim(cluster_of(1));
  const VectorWorkload v =
      make_vector({make_task(0, 1, 10), make_task(2, 3, 11),
                   make_task(4, 5, 12)});
  sched.begin_vector(v, sim);
  for (const ContractionTask& t : v.tasks) {
    EXPECT_EQ(sched.assign(t, sim), 0);
    sim.execute(t, 0);
  }
}

TEST(MiccoScheduler, AssignedCountTracksDistinctTensors) {
  MiccoScheduler sched;
  ClusterSimulator sim(cluster_of(1));
  const VectorWorkload v =
      make_vector({make_task(0, 1, 10), make_task(0, 1, 11)});
  sched.begin_vector(v, sim);
  sim.execute(v.tasks[0], sched.assign(v.tasks[0], sim));
  sim.execute(v.tasks[1], sched.assign(v.tasks[1], sim));
  EXPECT_EQ(sched.assigned_count(0), 2);  // tensors 0 and 1, not 4 slots
}

TEST(MiccoScheduler, SetReuseBoundsTakesEffect) {
  MiccoScheduler sched;
  EXPECT_EQ(sched.reuse_bounds(), ReuseBounds::naive());
  sched.set_reuse_bounds(ReuseBounds{0, 2, 0});
  EXPECT_EQ(sched.reuse_bounds(), (ReuseBounds{0, 2, 0}));
}

TEST(MiccoScheduler, DeterministicAcrossRunsWithSameSeed) {
  const auto run = [](std::uint64_t seed) {
    MiccoSchedulerOptions opts;
    opts.seed = seed;
    MiccoScheduler sched(opts);
    ClusterSimulator sim(cluster_of(4));
    std::vector<DeviceId> choices;
    for (int vec = 0; vec < 3; ++vec) {
      VectorWorkload v;
      for (TensorId i = 0; i < 4; ++i) {
        const TensorId base = static_cast<TensorId>(vec) * 100;
        v.tasks.push_back(
            make_task(base + 2 * i, base + 2 * i + 1, base + 50 + i));
      }
      sched.begin_vector(v, sim);
      for (const ContractionTask& t : v.tasks) {
        const DeviceId d = sched.assign(t, sim);
        choices.push_back(d);
        sim.execute(t, d);
      }
    }
    return choices;
  };
  EXPECT_EQ(run(7), run(7));
}

TEST(MiccoScheduler, CandidateMaskHandlesMoreThan64Devices) {
  // The candidate dedup bitmask spans multiple 64-bit words here; device
  // ids past 63 must set bits in the second word, not alias the first.
  constexpr int kDevices = 70;
  obs::MemoryEventSink sink;
  obs::Telemetry telemetry;
  telemetry.sink = &sink;
  MiccoSchedulerOptions opts;
  opts.bounds = ReuseBounds{2, 2, 2};
  MiccoScheduler sched(opts);
  sched.set_telemetry(&telemetry);
  ClusterSimulator sim(cluster_of(kDevices));

  // Park tensors 0 and 1 on a device in the mask's second word.
  ASSERT_TRUE(sim.execute(make_task(0, 1, 10), 65).ok());

  const VectorWorkload v =
      make_vector({make_task(2, 3, 11), make_task(0, 1, 12)});
  sched.begin_vector(v, sim);

  // TwoNew pair: all 70 devices pass the TwoNew tier, each exactly once.
  (void)sched.assign(v.tasks[0], sim);
  ASSERT_EQ(sink.decisions().size(), 1u);
  const std::vector<int>& cands = sink.decisions()[0].candidates;
  EXPECT_EQ(cands.size(), static_cast<std::size_t>(kDevices));
  EXPECT_EQ(std::set<int>(cands.begin(), cands.end()).size(), cands.size());

  // TwoRepeatedSame pair held only by device 65: the high-word bit admits
  // it and the data-centric tier sends the pair there.
  const DeviceId chosen = sched.assign(v.tasks[1], sim);
  EXPECT_EQ(chosen, 65);
  ASSERT_EQ(sink.decisions().size(), 2u);
  EXPECT_EQ(sink.decisions()[1].candidates, std::vector<int>{65});
}

}  // namespace
}  // namespace micco
