#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace micco {
namespace {

TEST(Csv, HeaderAndRows) {
  CsvWriter csv;
  csv.add_column("name");
  csv.add_column("gflops");
  csv.add_row({"Groute", "7676"});
  csv.add_row({"MICCO", "10199"});
  EXPECT_EQ(csv.render(), "name,gflops\nGroute,7676\nMICCO,10199\n");
  EXPECT_EQ(csv.rows(), 2u);
  EXPECT_EQ(csv.columns(), 2u);
}

TEST(Csv, NumericRowFormatting) {
  CsvWriter csv;
  csv.add_column("a");
  csv.add_column("b");
  csv.add_row_numeric({1.5, 2.25}, 2);
  EXPECT_EQ(csv.render(), "a,b\n1.50,2.25\n");
}

TEST(Csv, EscapesCommas) {
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
}

TEST(Csv, EscapesQuotes) {
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, EscapesNewlines) {
  EXPECT_EQ(CsvWriter::escape("two\nlines"), "\"two\nlines\"");
}

TEST(Csv, PlainCellsUntouched) {
  EXPECT_EQ(CsvWriter::escape("plain-cell_1.5"), "plain-cell_1.5");
}

TEST(Csv, QuotedCellsRoundTripInRender) {
  CsvWriter csv;
  csv.add_column("label");
  csv.add_row({"vec=64, rate=50%"});
  EXPECT_EQ(csv.render(), "label\n\"vec=64, rate=50%\"\n");
}

TEST(Csv, WrongCellCountAborts) {
  CsvWriter csv;
  csv.add_column("only");
  EXPECT_DEATH(csv.add_row({"a", "b"}), "size");
}

TEST(Csv, ColumnsAfterRowsAbort) {
  CsvWriter csv;
  csv.add_column("a");
  csv.add_row({"1"});
  EXPECT_DEATH(csv.add_column("late"), "before");
}

TEST(Csv, FileWriting) {
  CsvWriter csv;
  csv.add_column("x");
  csv.add_row({"42"});
  const std::string path = "/tmp/micco_test.csv";
  csv.write_file(path);
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "x");
  EXPECT_EQ(line2, "42");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace micco
