// Tests for the tracing primitives (obs/span.hpp, obs/clock.hpp): trace-
// context id allocation, span serialization (field omission, determinism),
// the JSONL sink's sequence stamping, and the injectable clock.
#include "obs/span.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/clock.hpp"
#include "obs/json.hpp"
#include "obs/names.hpp"

namespace micco::obs {
namespace {

TEST(ObsSpan, TraceContextAllocatesEagerMonotonicIds) {
  TraceContext ctx;
  ctx.trace_id = "t-1";
  EXPECT_EQ(ctx.alloc(), 1u);  // root id is always 1
  EXPECT_EQ(ctx.alloc(), 2u);
  ctx.parent_span = 2;
  // A child allocated under span 2 always gets a larger id than its parent,
  // so trees reassemble regardless of emission order.
  EXPECT_GT(ctx.alloc(), ctx.parent_span);
}

TEST(ObsSpan, ToJsonOmitsUnsetOptionalFields) {
  SpanEvent event;
  event.trace_id = "t-abc-0";
  event.span_id = 2;
  event.parent_id = 1;
  event.name = names::kSpanQueue;
  event.job_id = 7;

  const JsonValue doc = event.to_json(0);
  EXPECT_EQ(doc.at("seq").as_int(), 0);
  EXPECT_EQ(doc.at("trace").as_string(), "t-abc-0");
  EXPECT_EQ(doc.at("span").as_int(), 2);
  EXPECT_EQ(doc.at("parent").as_int(), 1);
  EXPECT_EQ(doc.at("name").as_string(), names::kSpanQueue);
  EXPECT_EQ(doc.at("job").as_int(), 7);
  EXPECT_EQ(doc.find("tenant"), nullptr);
  EXPECT_EQ(doc.find("vector"), nullptr);
  EXPECT_EQ(doc.find("sim_time_s"), nullptr);
  EXPECT_EQ(doc.find("duration_ms"), nullptr);
}

TEST(ObsSpan, ToJsonCarriesOptionalFieldsAndAttrsInOrder) {
  SpanEvent event;
  event.trace_id = "t";
  event.span_id = 5;
  event.parent_id = 3;
  event.name = names::kSpanExec;
  event.job_id = 1;
  event.tenant = "alice";
  event.vector_index = 4;
  event.sim_time_s = 0.25;
  event.duration_ms = 250.0;
  event.attrs_int.emplace_back("pairs", 12);
  event.attrs_str.emplace_back("state", "DONE");

  const JsonValue doc = event.to_json(9);
  EXPECT_EQ(doc.at("tenant").as_string(), "alice");
  EXPECT_EQ(doc.at("vector").as_int(), 4);
  EXPECT_DOUBLE_EQ(doc.at("sim_time_s").as_double(), 0.25);
  EXPECT_DOUBLE_EQ(doc.at("duration_ms").as_double(), 250.0);
  EXPECT_EQ(doc.at("pairs").as_int(), 12);
  EXPECT_EQ(doc.at("state").as_string(), "DONE");
  // Serialization is deterministic: same event, same bytes.
  EXPECT_EQ(doc.dump(), event.to_json(9).dump());
}

TEST(ObsSpan, JsonlSinkStampsContiguousSequenceNumbers) {
  std::ostringstream out;
  JsonlSpanSink sink(out);
  SpanEvent event;
  event.trace_id = "t";
  event.name = names::kSpanSched;
  for (int i = 0; i < 3; ++i) {
    event.span_id = static_cast<std::uint64_t>(i + 1);
    sink.span(event);
  }
  sink.flush();

  std::istringstream lines(out.str());
  std::string line;
  int expected = 0;
  while (std::getline(lines, line)) {
    const auto doc = parse_json(line);
    ASSERT_TRUE(doc.has_value()) << line;
    EXPECT_EQ(doc->at("seq").as_int(), expected++);
  }
  EXPECT_EQ(expected, 3);
}

TEST(ObsSpan, MemorySinkBuffersAndClears) {
  MemorySpanSink sink;
  SpanEvent event;
  event.name = names::kSpanRecovery;
  sink.span(event);
  sink.span(event);
  ASSERT_EQ(sink.spans().size(), 2u);
  EXPECT_EQ(sink.spans()[0].name, names::kSpanRecovery);
  sink.clear();
  EXPECT_TRUE(sink.spans().empty());
}

// -- clocks -----------------------------------------------------------------

TEST(ObsClock, ManualClockIsScripted) {
  ManualClock clock;
  EXPECT_DOUBLE_EQ(clock.monotonic_ms(), 0.0);
  EXPECT_EQ(clock.wall_time_utc(), "1970-01-01T00:00:00Z");
  clock.advance_ms(123.5);
  EXPECT_DOUBLE_EQ(clock.monotonic_ms(), 123.5);
  clock.set_wall("2026-01-01T00:00:00Z");
  EXPECT_EQ(clock.wall_time_utc(), "2026-01-01T00:00:00Z");
}

TEST(ObsClock, SystemClockIsMonotoneAndStampsUtc) {
  SystemClock clock;
  const double a = clock.monotonic_ms();
  const double b = clock.monotonic_ms();
  EXPECT_GE(b, a);
  const std::string stamp = clock.wall_time_utc();
  // "YYYY-MM-DDTHH:MM:SSZ"
  ASSERT_EQ(stamp.size(), 20u);
  EXPECT_EQ(stamp[4], '-');
  EXPECT_EQ(stamp[10], 'T');
  EXPECT_EQ(stamp.back(), 'Z');
}

TEST(ObsClock, DefaultClockIsAStableSingleton) {
  EXPECT_NE(default_clock(), nullptr);
  EXPECT_EQ(default_clock(), default_clock());
}

}  // namespace
}  // namespace micco::obs
