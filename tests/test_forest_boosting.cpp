#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <memory>

#include "common/rng.hpp"
#include "ml/gradient_boosting.hpp"
#include "ml/linear_regression.hpp"
#include "ml/random_forest.hpp"
#include "ml/regressor.hpp"

namespace micco::ml {
namespace {

/// Nonlinear interaction surface resembling the bounds landscape: value
/// depends on thresholds and feature interplay, not a linear combination.
Dataset nonlinear_data(int n, std::uint64_t seed) {
  Dataset d(3);
  Pcg32 rng(seed);
  for (int i = 0; i < n; ++i) {
    const double a = rng.uniform_real(0, 1);
    const double b = rng.uniform_real(0, 1);
    const double c = rng.uniform_real(0, 1);
    const double features[3] = {a, b, c};
    const double y =
        (a > 0.5 ? 2.0 : 0.0) + std::sin(6.0 * b) * (c > 0.3 ? 1.0 : -1.0);
    d.add(features, y);
  }
  return d;
}

TEST(RandomForest, FitsNonlinearSurfaceWell) {
  const Dataset train = nonlinear_data(400, 1);
  const Dataset test = nonlinear_data(100, 2);
  ForestConfig cfg;
  cfg.n_trees = 60;
  RandomForest forest(cfg);
  forest.fit(train);
  EXPECT_GT(r2_score(test.targets(), forest.predict_all(test)), 0.7);
}

TEST(RandomForest, OutperformsLinearOnNonlinearData) {
  // The Table IV ordering: RandomForest >> LinearRegression here.
  const Dataset train = nonlinear_data(400, 3);
  const Dataset test = nonlinear_data(100, 4);

  ForestConfig cfg;
  cfg.n_trees = 60;
  RandomForest forest(cfg);
  forest.fit(train);
  LinearRegression linear;
  linear.fit(train);

  const double r2_forest =
      r2_score(test.targets(), forest.predict_all(test));
  const double r2_linear =
      r2_score(test.targets(), linear.predict_all(test));
  EXPECT_GT(r2_forest, r2_linear + 0.2);
}

TEST(RandomForest, TreeCountMatchesConfig) {
  ForestConfig cfg;
  cfg.n_trees = 10;
  RandomForest forest(cfg);
  forest.fit(nonlinear_data(50, 5));
  EXPECT_EQ(forest.tree_count(), 10u);
}

TEST(RandomForest, DeterministicForFixedSeed) {
  const Dataset d = nonlinear_data(100, 6);
  ForestConfig cfg;
  cfg.n_trees = 15;
  cfg.seed = 42;
  RandomForest f1(cfg), f2(cfg);
  f1.fit(d);
  f2.fit(d);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(f1.predict(d.row(i)), f2.predict(d.row(i)));
  }
}

TEST(RandomForest, DifferentSeedsDifferentModels) {
  const Dataset d = nonlinear_data(100, 7);
  ForestConfig c1;
  c1.n_trees = 15;
  c1.seed = 1;
  ForestConfig c2 = c1;
  c2.seed = 2;
  RandomForest f1(c1), f2(c2);
  f1.fit(d);
  f2.fit(d);
  bool any_diff = false;
  for (std::size_t i = 0; i < 20 && !any_diff; ++i) {
    any_diff = f1.predict(d.row(i)) != f2.predict(d.row(i));
  }
  EXPECT_TRUE(any_diff);
}

TEST(RandomForest, PredictBeforeFitAborts) {
  RandomForest forest;
  const double probe[3] = {0, 0, 0};
  EXPECT_DEATH((void)forest.predict(probe), "fit");
}

TEST(GradientBoosting, FitsNonlinearSurfaceWell) {
  const Dataset train = nonlinear_data(400, 8);
  const Dataset test = nonlinear_data(100, 9);
  BoostingConfig cfg;
  cfg.n_stages = 80;
  GradientBoosting gbm(cfg);
  gbm.fit(train);
  EXPECT_GT(r2_score(test.targets(), gbm.predict_all(test)), 0.7);
}

TEST(GradientBoosting, MoreStagesReduceTrainingError) {
  const Dataset train = nonlinear_data(300, 10);
  BoostingConfig few;
  few.n_stages = 5;
  BoostingConfig many;
  many.n_stages = 100;
  GradientBoosting g_few(few), g_many(many);
  g_few.fit(train);
  g_many.fit(train);
  EXPECT_LT(mse(train.targets(), g_many.predict_all(train)),
            mse(train.targets(), g_few.predict_all(train)));
}

TEST(GradientBoosting, StageCountMatchesConfig) {
  BoostingConfig cfg;
  cfg.n_stages = 12;
  GradientBoosting gbm(cfg);
  gbm.fit(nonlinear_data(60, 11));
  EXPECT_EQ(gbm.stage_count(), 12u);
}

TEST(GradientBoosting, ConstantTargetPredictsConstant) {
  Dataset d(1);
  for (int i = 0; i < 20; ++i) {
    const double features[1] = {static_cast<double>(i)};
    d.add(features, 3.5);
  }
  GradientBoosting gbm;
  gbm.fit(d);
  const double probe[1] = {100.0};
  EXPECT_NEAR(gbm.predict(probe), 3.5, 1e-9);
}

TEST(MultiOutput, TrainsOneModelPerOutput) {
  // Output 0 = a, output 1 = b: each per-output model must learn its own
  // column.
  Dataset d0(2), d1(2);
  Pcg32 rng(12);
  for (int i = 0; i < 200; ++i) {
    const double a = rng.uniform_real(0, 1);
    const double b = rng.uniform_real(0, 1);
    const double features[2] = {a, b};
    d0.add(features, a);
    d1.add(features, b);
  }
  MultiOutputRegressor model(
      [] { return std::make_unique<LinearRegression>(); }, 2);
  const std::array<Dataset, 2> sets{d0, d1};
  model.fit(std::span<const Dataset>(sets.data(), 2));
  const double probe[2] = {0.3, 0.8};
  const std::vector<double> out = model.predict(probe);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_NEAR(out[0], 0.3, 1e-6);
  EXPECT_NEAR(out[1], 0.8, 1e-6);
}

TEST(MultiOutput, PredictBeforeFitAborts) {
  MultiOutputRegressor model(
      [] { return std::make_unique<LinearRegression>(); }, 2);
  const double probe[2] = {0, 0};
  EXPECT_DEATH((void)model.predict(probe), "fit");
}

}  // namespace
}  // namespace micco::ml
