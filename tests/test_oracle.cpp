#include "sched/oracle.hpp"

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "workload/synthetic.hpp"

namespace micco {
namespace {

TensorDesc make_desc(TensorId id, std::int64_t extent = 64) {
  return TensorDesc{id, 2, extent, 4};
}

ContractionTask make_task(TensorId a, TensorId b, TensorId out) {
  ContractionTask t;
  t.a = make_desc(a);
  t.b = make_desc(b);
  t.out = make_desc(out);
  return t;
}

ClusterConfig cluster_of(int devices) {
  ClusterConfig c;
  c.num_devices = devices;
  c.device_capacity_bytes = 1ull << 30;
  return c;
}

WorkloadStream small_stream(std::int64_t vector_size = 8,
                            std::uint64_t seed = 3) {
  SyntheticConfig cfg;
  cfg.num_vectors = 4;
  cfg.vector_size = vector_size;
  cfg.tensor_extent = 64;
  cfg.batch = 2;
  cfg.repeated_rate = 0.75;
  cfg.seed = seed;
  return generate_synthetic(cfg);
}

TEST(Oracle, SingleTaskPicksIdleDevice) {
  ClusterSimulator sim(cluster_of(2));
  sim.execute(make_task(100, 101, 102), 0);  // load device 0

  VectorWorkload vec;
  vec.tasks = {make_task(0, 1, 2)};
  const OracleAssignment plan = oracle_search(vec, sim);
  ASSERT_EQ(plan.devices.size(), 1u);
  EXPECT_EQ(plan.devices[0], 1);
  EXPECT_TRUE(plan.exhaustive);
  EXPECT_EQ(plan.evaluated, 2u);  // two devices tried
}

TEST(Oracle, ExploitsResidencyWhenBalanced) {
  ClusterSimulator sim(cluster_of(2));
  sim.execute(make_task(0, 1, 50), 0);
  sim.execute(make_task(2, 3, 51), 1);
  sim.barrier();

  // Both devices equally busy; the operands of the single pair live on
  // device 1, which is strictly cheaper.
  VectorWorkload vec;
  vec.tasks = {make_task(2, 3, 60)};
  const OracleAssignment plan = oracle_search(vec, sim);
  EXPECT_EQ(plan.devices[0], 1);
}

TEST(Oracle, SearchDoesNotMutateBaseSimulator) {
  ClusterSimulator sim(cluster_of(2));
  sim.execute(make_task(0, 1, 50), 0);
  const double busy_before = sim.busy_time(0);
  const std::uint64_t used_before = sim.memory_used(0);

  VectorWorkload vec;
  vec.tasks = {make_task(0, 1, 60), make_task(2, 3, 61)};
  (void)oracle_search(vec, sim);
  EXPECT_DOUBLE_EQ(sim.busy_time(0), busy_before);
  EXPECT_EQ(sim.memory_used(0), used_before);
  EXPECT_FALSE(sim.resident_anywhere(60));
}

TEST(Oracle, ExhaustiveAtLeastMatchesMicco) {
  // Per-vector exhaustive search can never lose to the greedy heuristic on
  // the same stream (it explores every assignment the heuristic could make,
  // vector by vector).
  const WorkloadStream stream = small_stream();
  const ClusterConfig cluster = cluster_of(2);

  MiccoScheduler sched;
  const RunResult micco = run_stream(stream, sched, cluster);
  const ExecutionMetrics oracle = run_oracle(stream, cluster);
  EXPECT_LE(oracle.makespan_s, micco.metrics.makespan_s * 1.0001);
  EXPECT_EQ(oracle.total_flops, stream.total_flops());
}

TEST(Oracle, BeamModeKicksInForLargeVectors) {
  const WorkloadStream stream = small_stream(32, 7);
  ClusterSimulator sim(cluster_of(4));
  OracleOptions options;
  options.exhaustive_task_limit = 4;
  options.beam_width = 8;
  const OracleAssignment plan =
      oracle_search(stream.vectors[0], sim, options);
  EXPECT_FALSE(plan.exhaustive);
  EXPECT_EQ(plan.devices.size(), stream.vectors[0].tasks.size());
  // Beam bounds the evaluation count: <= tasks * beam * devices.
  EXPECT_LE(plan.evaluated,
            stream.vectors[0].tasks.size() * options.beam_width * 4);
}

TEST(Oracle, BeamStillConservesWork) {
  const WorkloadStream stream = small_stream(16, 9);
  OracleOptions options;
  options.exhaustive_task_limit = 2;
  options.beam_width = 4;
  const ExecutionMetrics m = run_oracle(stream, cluster_of(2), options);
  EXPECT_EQ(m.total_flops, stream.total_flops());
  EXPECT_GT(m.gflops(), 0.0);
}

TEST(Oracle, DeterministicPlans) {
  const WorkloadStream stream = small_stream();
  const ExecutionMetrics a = run_oracle(stream, cluster_of(2));
  const ExecutionMetrics b = run_oracle(stream, cluster_of(2));
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
}

TEST(Oracle, MeasuresMiccoOptimalityGap) {
  // The headline use: MICCO's gap to the per-vector optimum stays modest on
  // a reuse-heavy workload (the paper's "highly effective local optimal"
  // claim, quantified).
  const WorkloadStream stream = small_stream(8, 21);
  const ClusterConfig cluster = cluster_of(2);
  MiccoSchedulerOptions opts;
  opts.bounds = ReuseBounds{1, 1, 1};
  MiccoScheduler sched(opts);
  const RunResult micco = run_stream(stream, sched, cluster);
  const ExecutionMetrics oracle = run_oracle(stream, cluster);
  const double gap = micco.metrics.makespan_s / oracle.makespan_s;
  EXPECT_GE(gap, 1.0 - 1e-9);
  EXPECT_LT(gap, 1.6);  // greedy stays within 60% of per-vector optimal here
}

}  // namespace
}  // namespace micco
