#include "ml/decision_tree.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace micco::ml {
namespace {

Dataset step_function_data() {
  // y = 1 for x < 0, y = 5 for x >= 0: one split separates it perfectly.
  Dataset d(1);
  for (int i = -10; i < 10; ++i) {
    const double x = static_cast<double>(i) + 0.5;
    const double features[1] = {x};
    d.add(features, x < 0 ? 1.0 : 5.0);
  }
  return d;
}

TEST(RegressionTree, LearnsStepFunctionExactly) {
  RegressionTree tree;
  tree.fit(step_function_data());
  const double left[1] = {-3.0};
  const double right[1] = {3.0};
  EXPECT_DOUBLE_EQ(tree.predict(left), 1.0);
  EXPECT_DOUBLE_EQ(tree.predict(right), 5.0);
}

TEST(RegressionTree, ConstantTargetGivesSingleLeaf) {
  Dataset d(1);
  for (int i = 0; i < 10; ++i) {
    const double features[1] = {static_cast<double>(i)};
    d.add(features, 7.0);
  }
  RegressionTree tree;
  tree.fit(d);
  EXPECT_EQ(tree.node_count(), 1u);
  const double probe[1] = {99.0};
  EXPECT_DOUBLE_EQ(tree.predict(probe), 7.0);
}

TEST(RegressionTree, DepthLimitRespected) {
  Dataset d(1);
  Pcg32 rng(1);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform_real(0, 10);
    const double features[1] = {x};
    d.add(features, std::sin(x));
  }
  TreeConfig cfg;
  cfg.max_depth = 3;
  RegressionTree tree(cfg);
  tree.fit(d);
  EXPECT_LE(tree.depth(), 4);  // depth counts nodes along the path
}

TEST(RegressionTree, DeeperTreesFitBetter) {
  Dataset d(1);
  Pcg32 rng(2);
  for (int i = 0; i < 300; ++i) {
    const double x = rng.uniform_real(0, 10);
    const double features[1] = {x};
    d.add(features, std::sin(x));
  }
  TreeConfig shallow;
  shallow.max_depth = 2;
  TreeConfig deep;
  deep.max_depth = 8;
  RegressionTree ts(shallow), td(deep);
  ts.fit(d);
  td.fit(d);
  const double r2_shallow = r2_score(d.targets(), ts.predict_all(d));
  const double r2_deep = r2_score(d.targets(), td.predict_all(d));
  EXPECT_GT(r2_deep, r2_shallow);
  EXPECT_GT(r2_deep, 0.9);
}

TEST(RegressionTree, MinSamplesLeafEnforced) {
  Dataset d(1);
  for (int i = 0; i < 10; ++i) {
    const double features[1] = {static_cast<double>(i)};
    d.add(features, static_cast<double>(i));
  }
  TreeConfig cfg;
  cfg.min_samples_leaf = 5;
  RegressionTree tree(cfg);
  tree.fit(d);
  // Only the 5/5 split is legal -> exactly one internal node, two leaves.
  EXPECT_EQ(tree.node_count(), 3u);
}

TEST(RegressionTree, MultiFeatureSplitSelection) {
  // Target depends only on feature 1; the tree must split on it, making
  // feature 0's value irrelevant to predictions.
  Dataset d(2);
  Pcg32 rng(3);
  for (int i = 0; i < 100; ++i) {
    const double noise = rng.uniform_real(-100, 100);
    const double signal = rng.uniform_real(0, 1);
    const double features[2] = {noise, signal};
    d.add(features, signal > 0.5 ? 10.0 : -10.0);
  }
  RegressionTree tree;
  tree.fit(d);
  const double lo[2] = {57.0, 0.1};
  const double hi[2] = {-57.0, 0.9};
  EXPECT_NEAR(tree.predict(lo), -10.0, 1e-9);
  EXPECT_NEAR(tree.predict(hi), 10.0, 1e-9);
}

TEST(RegressionTree, FeatureSubsamplingStillFits) {
  Dataset d(3);
  Pcg32 rng(4);
  for (int i = 0; i < 200; ++i) {
    const double a = rng.uniform_real(0, 1);
    const double b = rng.uniform_real(0, 1);
    const double c = rng.uniform_real(0, 1);
    const double features[3] = {a, b, c};
    d.add(features, a + b + c);
  }
  TreeConfig cfg;
  cfg.max_features = 1;
  cfg.max_depth = 10;
  RegressionTree tree(cfg);
  tree.fit(d);
  EXPECT_GT(r2_score(d.targets(), tree.predict_all(d)), 0.5);
}

TEST(RegressionTree, DeterministicForFixedSeed) {
  Dataset d(2);
  Pcg32 rng(5);
  for (int i = 0; i < 100; ++i) {
    const double features[2] = {rng.uniform_real(0, 1),
                                rng.uniform_real(0, 1)};
    d.add(features, rng.uniform_real(0, 1));
  }
  TreeConfig cfg;
  cfg.max_features = 1;
  cfg.seed = 77;
  RegressionTree t1(cfg), t2(cfg);
  t1.fit(d);
  t2.fit(d);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_DOUBLE_EQ(t1.predict(d.row(i)), t2.predict(d.row(i)));
  }
}

TEST(RegressionTree, PredictBeforeFitAborts) {
  RegressionTree tree;
  const double probe[1] = {0.0};
  EXPECT_DEATH((void)tree.predict(probe), "fit");
}

}  // namespace
}  // namespace micco::ml
