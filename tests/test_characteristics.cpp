#include "workload/characteristics.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace micco {
namespace {

ContractionTask make_task(TensorId a, TensorId b, TensorId out) {
  ContractionTask t;
  t.a = TensorDesc{a, 2, 16, 1};
  t.b = TensorDesc{b, 2, 16, 1};
  t.out = TensorDesc{out, 2, 16, 1};
  return t;
}

/// Oracle backed by an explicit set.
class SetResidency final : public ResidencyOracle {
 public:
  explicit SetResidency(std::unordered_set<TensorId> ids)
      : ids_(std::move(ids)) {}
  bool resident_anywhere(TensorId id) const override {
    return ids_.contains(id);
  }

 private:
  std::unordered_set<TensorId> ids_;
};

TEST(Characteristics, EmptyResidencyGivesZeroRepeatRate) {
  VectorWorkload v;
  v.tasks = {make_task(0, 1, 10), make_task(2, 3, 11)};
  const DataCharacteristics c = extract_characteristics(v, EmptyResidency{});
  EXPECT_DOUBLE_EQ(c.repeated_rate, 0.0);
  EXPECT_DOUBLE_EQ(c.vector_size, 4.0);
  EXPECT_DOUBLE_EQ(c.tensor_extent, 16.0);
}

TEST(Characteristics, RepeatedRateCountsResidentSlots) {
  VectorWorkload v;
  v.tasks = {make_task(0, 1, 10), make_task(2, 3, 11)};
  const DataCharacteristics c =
      extract_characteristics(v, SetResidency{{0, 2, 3}});
  EXPECT_DOUBLE_EQ(c.repeated_rate, 0.75);
}

TEST(Characteristics, RepeatedSlotCountedPerOccurrence) {
  // Tensor 0 occupies two slots; both count toward the rate.
  VectorWorkload v;
  v.tasks = {make_task(0, 0, 10), make_task(1, 2, 11)};
  const DataCharacteristics c = extract_characteristics(v, SetResidency{{0}});
  EXPECT_DOUBLE_EQ(c.repeated_rate, 0.5);
}

TEST(MultiplicitySkew, AllDistinctIsZero) {
  VectorWorkload v;
  v.tasks = {make_task(0, 1, 10), make_task(2, 3, 11)};
  EXPECT_DOUBLE_EQ(multiplicity_skew(v), 0.0);
}

TEST(MultiplicitySkew, SingleTensorDominanceIsOne) {
  VectorWorkload v;
  v.tasks = {make_task(7, 7, 10), make_task(7, 7, 11)};
  EXPECT_DOUBLE_EQ(multiplicity_skew(v), 1.0);
}

TEST(MultiplicitySkew, PartialConcentrationBetween) {
  VectorWorkload v;
  v.tasks = {make_task(0, 0, 10), make_task(0, 1, 11), make_task(2, 3, 12)};
  const double skew = multiplicity_skew(v);
  EXPECT_GT(skew, 0.0);
  EXPECT_LT(skew, 1.0);
}

TEST(MultiplicitySkew, MonotoneInConcentration) {
  VectorWorkload spread;
  spread.tasks = {make_task(0, 1, 10), make_task(2, 3, 11),
                  make_task(4, 5, 12), make_task(6, 7, 13)};
  VectorWorkload mild;
  mild.tasks = {make_task(0, 1, 10), make_task(0, 2, 11),
                make_task(3, 4, 12), make_task(5, 6, 13)};
  VectorWorkload heavy;
  heavy.tasks = {make_task(0, 0, 10), make_task(0, 0, 11),
                 make_task(0, 1, 12), make_task(2, 3, 13)};
  EXPECT_LT(multiplicity_skew(spread), multiplicity_skew(mild));
  EXPECT_LT(multiplicity_skew(mild), multiplicity_skew(heavy));
}

TEST(Characteristics, FeatureVectorOrderIsStable) {
  DataCharacteristics c;
  c.vector_size = 64;
  c.tensor_extent = 384;
  c.distribution_bias = 0.5;
  c.repeated_rate = 0.25;
  double f[DataCharacteristics::kFeatureCount];
  c.to_features(f);
  EXPECT_DOUBLE_EQ(f[0], 64.0);
  EXPECT_DOUBLE_EQ(f[1], 384.0);
  EXPECT_DOUBLE_EQ(f[2], 0.5);
  EXPECT_DOUBLE_EQ(f[3], 0.25);
}

TEST(Characteristics, EmptyVectorIsAllZeros) {
  VectorWorkload v;
  const DataCharacteristics c = extract_characteristics(v, EmptyResidency{});
  EXPECT_DOUBLE_EQ(c.vector_size, 0.0);
  EXPECT_DOUBLE_EQ(c.tensor_extent, 0.0);
  EXPECT_DOUBLE_EQ(c.repeated_rate, 0.0);
  EXPECT_DOUBLE_EQ(c.distribution_bias, 0.0);
}

}  // namespace
}  // namespace micco
