#include "core/bounds_model.hpp"

#include <gtest/gtest.h>

namespace micco {
namespace {

std::vector<TrainingSample> synthetic_corpus(int n, std::uint64_t seed) {
  // A deterministic nonlinear bounds landscape: high repeated rate with low
  // bias wants loose bound 0; bias pushes bound 1; fresh-heavy vectors want
  // loose bound 2.
  std::vector<TrainingSample> samples;
  Pcg32 rng(seed);
  for (int i = 0; i < n; ++i) {
    TrainingSample s;
    s.characteristics.vector_size = rng.uniform_below(2) ? 16.0 : 64.0;
    s.characteristics.tensor_extent = rng.uniform_below(2) ? 128.0 : 384.0;
    s.characteristics.distribution_bias = rng.uniform01();
    s.characteristics.repeated_rate = rng.uniform01();
    const double rate = s.characteristics.repeated_rate;
    const double bias = s.characteristics.distribution_bias;
    s.best_bounds[0] = (rate > 0.6 && bias < 0.5) ? 2 : 0;
    s.best_bounds[1] = bias > 0.5 ? 2 : 1;
    s.best_bounds[2] = rate < 0.3 ? 2 : 0;
    s.best_gflops = 1000.0;
    samples.push_back(s);
  }
  return samples;
}

TEST(BoundDatasets, ShapeAndContent) {
  const auto samples = synthetic_corpus(10, 1);
  const auto sets = build_bound_datasets(samples);
  for (const auto& set : sets) {
    EXPECT_EQ(set.size(), 10u);
    EXPECT_EQ(set.n_features(),
              static_cast<std::size_t>(DataCharacteristics::kFeatureCount));
  }
  EXPECT_DOUBLE_EQ(sets[0].target(0),
                   static_cast<double>(samples[0].best_bounds[0]));
  EXPECT_DOUBLE_EQ(sets[2].target(5),
                   static_cast<double>(samples[5].best_bounds[2]));
}

TEST(TrainBoundsModel, ForestLearnsTheLandscape) {
  const auto samples = synthetic_corpus(300, 2);
  const TrainedBoundsModel trained = train_bounds_model(
      samples, random_forest_factory(), "RandomForest", 2);
  EXPECT_GT(trained.report.mean_r2, 0.6);
  EXPECT_GT(trained.report.train_ms, 0.0);
  EXPECT_GT(trained.report.inference_us, 0.0);
  ASSERT_NE(trained.provider, nullptr);
}

TEST(TrainBoundsModel, ForestBeatsLinearOnNonlinearLandscape) {
  const auto samples = synthetic_corpus(300, 3);
  const TrainedBoundsModel forest = train_bounds_model(
      samples, random_forest_factory(), "RandomForest", 2);
  const TrainedBoundsModel linear = train_bounds_model(
      samples, linear_regression_factory(), "LinearRegression", 2);
  EXPECT_GT(forest.report.mean_r2, linear.report.mean_r2);
}

TEST(TrainBoundsModel, ProviderPredictionsClampedToRange) {
  const auto samples = synthetic_corpus(100, 4);
  TrainedBoundsModel trained = train_bounds_model(
      samples, random_forest_factory(), "RandomForest", 2);

  DataCharacteristics probe;
  probe.vector_size = 64;
  probe.tensor_extent = 384;
  probe.distribution_bias = 0.9;
  probe.repeated_rate = 0.9;
  const ReuseBounds b = trained.provider->bounds_for(probe);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GE(b[i], 0);
    EXPECT_LE(b[i], 2);
  }
}

TEST(TrainBoundsModel, ProviderTracksLandscapeDirection) {
  const auto samples = synthetic_corpus(400, 5);
  TrainedBoundsModel trained = train_bounds_model(
      samples, random_forest_factory(), "RandomForest", 2);

  DataCharacteristics reuse_heavy;
  reuse_heavy.vector_size = 64;
  reuse_heavy.tensor_extent = 384;
  reuse_heavy.distribution_bias = 0.1;
  reuse_heavy.repeated_rate = 0.9;

  DataCharacteristics fresh_heavy = reuse_heavy;
  fresh_heavy.repeated_rate = 0.05;

  // The landscape sets bound0 high for reuse-heavy/unbiased vectors and
  // bound2 high for fresh-heavy ones; forest smoothing may not hit the
  // exact label, but the ordering must hold in both directions.
  const ReuseBounds at_reuse = trained.provider->bounds_for(reuse_heavy);
  const ReuseBounds at_fresh = trained.provider->bounds_for(fresh_heavy);
  EXPECT_GT(at_reuse[0], at_fresh[0]);
  EXPECT_GT(at_fresh[2], at_reuse[2]);
}

TEST(TrainBoundsModel, GradientBoostingAlsoLearns) {
  const auto samples = synthetic_corpus(300, 6);
  const TrainedBoundsModel gbm = train_bounds_model(
      samples, gradient_boosting_factory(), "GradientBoosting", 2);
  EXPECT_GT(gbm.report.mean_r2, 0.5);
  EXPECT_EQ(gbm.report.model_name, "GradientBoosting");
}

TEST(TrainBoundsModel, TooFewSamplesAborts) {
  const auto samples = synthetic_corpus(3, 7);
  EXPECT_DEATH((void)train_bounds_model(samples, random_forest_factory(),
                                        "RandomForest", 2),
               "size");
}

}  // namespace
}  // namespace micco
