#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace micco {
namespace {

TEST(TextTable, RendersHeadersAndRows) {
  TextTable t;
  t.add_column("name", Align::kLeft);
  t.add_column("value");
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(TextTable, ColumnsAutoSizeToWidestCell) {
  TextTable t;
  t.add_column("h");
  t.add_row({"wide-cell-content"});
  const std::string out = t.render();
  // Every rendered line has the same width.
  std::istringstream is(out);
  std::string line;
  std::size_t width = 0;
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(TextTable, RightAlignmentPadsLeft) {
  TextTable t;
  t.add_column("col", Align::kRight);
  t.add_row({"x"});
  const std::string out = t.render();
  EXPECT_NE(out.find("  x |"), std::string::npos);
}

TEST(TextTable, RuleInsertedBetweenRows) {
  TextTable t;
  t.add_column("c");
  t.add_row({"a"});
  t.add_rule();
  t.add_row({"b"});
  const std::string out = t.render();
  // 2 border rules + header rule + mid rule = 4 lines starting with '+'.
  int rules = 0;
  std::istringstream is(out);
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line[0] == '+') ++rules;
  }
  EXPECT_EQ(rules, 4);
}

TEST(TextTable, CountsRowsAndColumns) {
  TextTable t;
  t.add_column("a");
  t.add_column("b");
  t.add_row({"1", "2"});
  EXPECT_EQ(t.columns(), 2u);
  EXPECT_EQ(t.rows(), 1u);
}

TEST(TextTable, StreamOperatorMatchesRender) {
  TextTable t;
  t.add_column("x");
  t.add_row({"1"});
  std::ostringstream os;
  os << t;
  EXPECT_EQ(os.str(), t.render());
}

TEST(Banner, ContainsTitle) {
  const std::string b = banner("Fig. 7");
  EXPECT_NE(b.find("Fig. 7"), std::string::npos);
  EXPECT_NE(b.find("==="), std::string::npos);
}

}  // namespace
}  // namespace micco
