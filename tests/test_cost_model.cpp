#include "gpusim/cost_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace micco {
namespace {

ContractionTask make_task(std::int64_t extent, std::int64_t batch = 4,
                          int rank = 2) {
  ContractionTask t;
  t.a = TensorDesc{0, rank, extent, batch};
  t.b = TensorDesc{1, rank, extent, batch};
  t.out = TensorDesc{2, 2, extent, batch};
  return t;
}

TEST(CostModel, OccupancyRampsWithExtent) {
  CostModel m;
  EXPECT_LT(m.occupancy(128), m.occupancy(384));
  EXPECT_LT(m.occupancy(384), m.occupancy(512));
  EXPECT_DOUBLE_EQ(m.occupancy(512), 1.0);
  EXPECT_DOUBLE_EQ(m.occupancy(4096), 1.0);  // clamped at saturation
}

TEST(CostModel, OccupancyHasFloor) {
  CostModel m;
  EXPECT_DOUBLE_EQ(m.occupancy(1), m.config().min_occupancy);
}

TEST(CostModel, KernelTimeGrowsWithExtent) {
  CostModel m;
  EXPECT_LT(m.kernel_time(make_task(128)), m.kernel_time(make_task(256)));
  EXPECT_LT(m.kernel_time(make_task(256)), m.kernel_time(make_task(768)));
}

TEST(CostModel, KernelTimeGrowsWithBatch) {
  CostModel m;
  EXPECT_LT(m.kernel_time(make_task(256, 2)), m.kernel_time(make_task(256, 8)));
}

TEST(CostModel, KernelIncludesLaunchLatency) {
  CostModel m;
  EXPECT_GE(m.kernel_time(make_task(1, 1)),
            m.config().kernel_launch_latency_s);
}

TEST(CostModel, BaryonKernelsCostMoreThanMeson) {
  CostModel m;
  EXPECT_GT(m.kernel_time(make_task(64, 4, 3)),
            m.kernel_time(make_task(64, 4, 2)));
}

TEST(CostModel, LargerKernelsAchieveBetterEfficiency) {
  // GFLOP rate (flops / kernel time) must improve with tensor size, which
  // is what makes Fig. 10's absolute numbers climb with extent.
  CostModel m;
  const auto rate = [&](std::int64_t extent) {
    const ContractionTask t = make_task(extent, 8);
    return static_cast<double>(t.flops()) / m.kernel_time(t);
  };
  EXPECT_LT(rate(128), rate(384));
  EXPECT_LT(rate(384), rate(768));
}

TEST(CostModel, TransferTimesScaleWithBytes) {
  CostModel m;
  EXPECT_LT(m.h2d_time(1 << 20), m.h2d_time(1 << 24));
  EXPECT_LT(m.p2p_time(1 << 20), m.p2p_time(1 << 24));
  EXPECT_LT(m.d2h_time(1 << 20), m.d2h_time(1 << 24));
}

TEST(CostModel, P2PFasterThanH2DForLargeTransfers) {
  // xGMI links outrun PCIe: the premise behind preferring peer copies.
  CostModel m;
  constexpr std::uint64_t kBytes = 256ull << 20;
  EXPECT_LT(m.p2p_time(kBytes), m.h2d_time(kBytes));
}

TEST(CostModel, TransfersIncludeLatencyFloor) {
  CostModel m;
  EXPECT_GE(m.h2d_time(1), m.config().transfer_latency_s);
  EXPECT_GE(m.p2p_time(1), m.config().transfer_latency_s);
}

TEST(CostModel, AllocAndFreeArePositive) {
  CostModel m;
  EXPECT_GT(m.alloc_time(), 0.0);
  EXPECT_GT(m.free_time(), 0.0);
  EXPECT_LT(m.free_time(), m.alloc_time());
}

TEST(CostModel, KernelTimeIsRooflineMaxPlusLaunch) {
  CostModelConfig cfg;
  CostModel m(cfg);
  for (const std::int64_t extent : {16, 64, 384, 1024}) {
    const ContractionTask t = make_task(extent, 4);
    const double compute_term =
        static_cast<double>(t.flops()) /
        (cfg.peak_gflops * 1e9 * cfg.sustained_fraction *
         m.occupancy(extent));
    const double mem_term = static_cast<double>(t.kernel_bytes()) /
                            (cfg.hbm_bandwidth_gbs * 1e9);
    EXPECT_NEAR(m.kernel_time(t),
                std::max(compute_term, mem_term) +
                    cfg.kernel_launch_latency_s,
                1e-15 + 1e-9 * m.kernel_time(t));
  }
}

TEST(CostModel, RejectsNonsenseConfig) {
  CostModelConfig cfg;
  cfg.peak_gflops = -1.0;
  EXPECT_DEATH(CostModel{cfg}, "peak_gflops");
}

}  // namespace
}  // namespace micco
