#include "graph/graph_stats.hpp"

#include <gtest/gtest.h>

#include "redstar/correlator.hpp"
#include "workload/synthetic.hpp"

namespace micco {
namespace {

TEST(GraphSetStats, EmptySetIsAllZero) {
  const GraphSetStats stats = analyze_graphs({});
  EXPECT_EQ(stats.graphs, 0u);
  EXPECT_EQ(stats.distinct_tensors, 0u);
  EXPECT_DOUBLE_EQ(stats.sharing_factor, 0.0);
}

TEST(GraphSetStats, SingleGraphCounts) {
  NodeRegistry reg(8, 1);
  ContractionGraph g;
  const auto a = g.add_node(reg.original("a"));
  const auto b = g.add_node(reg.original("b"));
  const auto c = g.add_node(reg.original("c"));
  g.add_edge(a, b);
  g.add_edge(b, c);

  const GraphSetStats stats = analyze_graphs({g});
  EXPECT_EQ(stats.graphs, 1u);
  EXPECT_EQ(stats.total_nodes, 3u);
  EXPECT_EQ(stats.total_edges, 2u);
  EXPECT_EQ(stats.distinct_tensors, 3u);
  EXPECT_DOUBLE_EQ(stats.sharing_factor, 1.0);
  EXPECT_EQ(stats.max_sharing, 1u);
  // Degrees: a=1, b=2, c=1.
  EXPECT_EQ(stats.degree_histogram.at(1), 2u);
  EXPECT_EQ(stats.degree_histogram.at(2), 1u);
}

TEST(GraphSetStats, SharingAcrossGraphs) {
  NodeRegistry reg(8, 1);
  const TensorDesc shared = reg.original("shared");
  ContractionGraph g1, g2;
  g1.add_edge(g1.add_node(shared), g1.add_node(reg.original("x")));
  g2.add_edge(g2.add_node(shared), g2.add_node(reg.original("y")));

  const GraphSetStats stats = analyze_graphs({g1, g2});
  EXPECT_EQ(stats.distinct_tensors, 3u);
  EXPECT_EQ(stats.max_sharing, 2u);
  EXPECT_NEAR(stats.sharing_factor, 4.0 / 3.0, 1e-12);
}

TEST(GraphSetStats, RealCorrelatorSharesNodesHeavily) {
  redstar::CorrelatorSpec spec = redstar::make_a1_rhopi();
  spec.time_slices = 4;
  spec.extent = 8;
  spec.batch = 1;
  NodeRegistry reg(spec.extent, spec.batch);
  std::vector<ContractionGraph> graphs;
  for (int t = 1; t <= spec.time_slices; ++t) {
    for (const auto& src : spec.source.constructions) {
      for (const auto& snk : spec.sink.constructions) {
        for (auto& g : redstar::enumerate_diagrams(src, snk, t, reg, 64)) {
          graphs.push_back(std::move(g));
        }
      }
    }
  }
  const GraphSetStats stats = analyze_graphs(graphs);
  EXPECT_GT(stats.graphs, 10u);
  // Source hadrons appear in diagrams of every time slice.
  EXPECT_GT(stats.sharing_factor, 2.0);
  EXPECT_GE(stats.max_sharing, static_cast<std::size_t>(spec.time_slices));
}

TEST(StreamStats, SyntheticStreamShape) {
  SyntheticConfig cfg;
  cfg.num_vectors = 5;
  cfg.vector_size = 8;
  cfg.tensor_extent = 8;
  cfg.batch = 1;
  cfg.repeated_rate = 0.5;
  const StreamStats stats = analyze_stream(generate_synthetic(cfg));
  EXPECT_EQ(stats.stages, 5u);
  EXPECT_EQ(stats.tasks, 20u);
  EXPECT_EQ(stats.widest_stage, 4u);
  ASSERT_EQ(stats.stage_widths.size(), 5u);
  for (const std::size_t w : stats.stage_widths) EXPECT_EQ(w, 4u);
  // Repeats mean fewer distinct inputs than slots.
  EXPECT_LT(stats.distinct_inputs, 40u);
  EXPECT_GT(stats.input_reuse_factor, 1.0);
  // Synthetic streams never feed outputs back in.
  EXPECT_DOUBLE_EQ(stats.intermediate_operand_fraction, 0.0);
}

TEST(StreamStats, RedstarStreamHasIntermediateOperands) {
  redstar::CorrelatorSpec spec = redstar::make_a1_rhopi();
  spec.time_slices = 3;
  spec.extent = 8;
  spec.batch = 1;
  const auto workload = redstar::build_workload(spec);
  const StreamStats stats = analyze_stream(workload.stream);
  EXPECT_GT(stats.intermediate_operand_fraction, 0.0);
  EXPECT_GT(stats.input_reuse_factor, 1.0);
}

TEST(StreamStats, ZeroRepeatStreamHasUnitReuse) {
  SyntheticConfig cfg;
  cfg.num_vectors = 3;
  cfg.vector_size = 8;
  cfg.tensor_extent = 8;
  cfg.batch = 1;
  cfg.repeated_rate = 0.0;
  const StreamStats stats = analyze_stream(generate_synthetic(cfg));
  EXPECT_DOUBLE_EQ(stats.input_reuse_factor, 1.0);
}

TEST(StatsToString, MentionsKeyNumbers) {
  NodeRegistry reg(8, 1);
  ContractionGraph g;
  g.add_edge(g.add_node(reg.original("a")), g.add_node(reg.original("b")));
  const std::string s = to_string(analyze_graphs({g}));
  EXPECT_NE(s.find("1 graphs"), std::string::npos);
  EXPECT_NE(s.find("2 distinct"), std::string::npos);
}

}  // namespace
}  // namespace micco
