// Run-report assembly: schema fields, validation, JSON round-trip, and the
// derived ratios against hand-computed values.
#include "obs/report.hpp"

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "obs/telemetry.hpp"
#include "workload/synthetic.hpp"

namespace micco {
namespace {

SyntheticConfig small_workload() {
  SyntheticConfig c;
  c.num_vectors = 3;
  c.vector_size = 12;
  c.tensor_extent = 64;
  c.batch = 2;
  c.repeated_rate = 0.5;
  c.seed = 5;
  return c;
}

ClusterConfig small_cluster() {
  ClusterConfig c;
  c.num_devices = 3;
  c.device_capacity_bytes = 64u << 20;
  return c;
}

obs::JsonValue make_report() {
  obs::Telemetry telemetry;
  const WorkloadStream stream = generate_synthetic(small_workload());
  MiccoScheduler sched;
  RunOptions options;
  options.telemetry = &telemetry;
  const RunResult result = run_stream(stream, sched, small_cluster(), options);
  return make_run_report(result, telemetry);
}

TEST(ObsReport, HasVersionedSchemaAndValidates) {
  const obs::JsonValue report = make_report();
  EXPECT_EQ(report.at("schema_version").as_int(), obs::kReportSchemaVersion);
  EXPECT_EQ(report.at("scheduler").as_string(), "MICCO");
  EXPECT_EQ(report.at("cluster").at("num_devices").as_int(), 3);
  EXPECT_EQ(obs::validate_report(report), "");
}

TEST(ObsReport, RoundTripsThroughDumpAndParse) {
  const obs::JsonValue report = make_report();
  std::string error;
  const auto parsed = obs::parse_json(report.dump(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(*parsed, report);
  EXPECT_EQ(obs::validate_report(*parsed), "");
}

TEST(ObsReport, DeviceRollupsSumToUtilization) {
  const obs::JsonValue report = make_report();
  const obs::JsonValue& devices = report.at("devices");
  ASSERT_EQ(devices.items().size(), 3u);
  const double makespan =
      report.at("derived").at("makespan_s").as_double();
  for (const obs::JsonValue& dev : devices.items()) {
    const double busy = dev.at("busy_s").as_double();
    const double util = dev.at("utilization").as_double();
    EXPECT_GE(util, 0.0);
    EXPECT_LE(util, 1.0 + 1e-9);
    EXPECT_NEAR(busy, util * makespan, 1e-9);
  }
}

TEST(ObsReport, DerivedRatiosAreConsistent) {
  const obs::JsonValue report = make_report();
  const obs::JsonValue& derived = report.at("derived");
  const obs::JsonValue& metrics = report.at("metrics");
  const double reused = metrics.at("reused_operands").as_double();
  const double fetched = metrics.at("fetched_operands").as_double();
  EXPECT_NEAR(derived.at("reuse_rate").as_double(),
              reused / (reused + fetched), 1e-12);
  EXPECT_GE(derived.at("imbalance_ratio").as_double(), 1.0 - 1e-9);
  EXPECT_GT(derived.at("gflops").as_double(), 0.0);
}

TEST(ObsReport, RegistrySnapshotEmbedded) {
  const obs::JsonValue report = make_report();
  const obs::JsonValue& registry = report.at("registry");
  const obs::JsonValue* decisions =
      registry.at("counters").find("sched.decisions");
  ASSERT_NE(decisions, nullptr);
  EXPECT_EQ(decisions->as_int(), 3 * 6);  // 12 slots -> 6 pairs per vector
  // Per-device gauges land in the registry too.
  EXPECT_NE(registry.at("gauges").find("cluster.device.0.utilization"),
            nullptr);
  // The bound-slack histogram is present with its overflow bucket.
  const obs::JsonValue* slack =
      registry.at("histograms").find("sched.bound_slack");
  ASSERT_NE(slack, nullptr);
  EXPECT_EQ(slack->at("counts").items().size(),
            slack->at("upper_bounds").items().size() + 1);
}

TEST(ObsReport, PerVectorCharacteristicsIncluded) {
  const obs::JsonValue report = make_report();
  const obs::JsonValue& vectors = report.at("vectors");
  ASSERT_EQ(vectors.items().size(), 3u);
  EXPECT_DOUBLE_EQ(vectors.items()[0].at("vector_size").as_double(), 12.0);
}

TEST(ObsReport, ValidationCatchesMissingFields) {
  obs::JsonValue report = make_report();
  EXPECT_EQ(obs::validate_report(report), "");
  obs::JsonValue broken = obs::JsonValue::object();
  broken.set("schema_version", obs::kReportSchemaVersion);
  EXPECT_NE(obs::validate_report(broken), "");
  obs::JsonValue wrong_version = report;
  wrong_version.set("schema_version", 999);
  EXPECT_NE(obs::validate_report(wrong_version), "");
  EXPECT_NE(obs::validate_report(obs::JsonValue(1)), "");
}

TEST(ObsReport, GeneratedAtOmittedOnTheBatchPath) {
  // Batch runs leave ReportInputs::generated_at empty, so the field is
  // absent entirely — a wall stamp here would break the fault-recovery
  // suite's byte comparison of reports across identical runs.
  EXPECT_EQ(make_report().find("generated_at"), nullptr);
}

TEST(ObsReport, GeneratedAtPresentWhenStamped) {
  obs::ReportInputs in;
  in.scheduler = "test";
  in.num_devices = 1;
  in.metrics.set("makespan_s", 1.0);
  obs::DeviceRollup d0;
  d0.device = 0;
  d0.busy_s = 1.0;
  d0.utilization = 1.0;
  in.devices.push_back(d0);
  in.makespan_s = 1.0;
  const obs::MetricsRegistry registry;

  const obs::JsonValue unstamped = obs::build_report(in, registry);
  EXPECT_EQ(unstamped.find("generated_at"), nullptr);

  in.generated_at = "2026-02-03T04:05:06Z";
  const obs::JsonValue stamped = obs::build_report(in, registry);
  EXPECT_EQ(stamped.at("generated_at").as_string(), "2026-02-03T04:05:06Z");
  EXPECT_EQ(obs::validate_report(stamped), "");
}

TEST(ObsReport, BuildReportDirectWithEmptyRegistry) {
  obs::ReportInputs in;
  in.scheduler = "test";
  in.num_devices = 2;
  in.metrics.set("makespan_s", 1.0);
  obs::DeviceRollup d0;
  d0.device = 0;
  d0.busy_s = 0.5;
  d0.utilization = 0.5;
  in.devices.push_back(d0);
  in.makespan_s = 1.0;
  const obs::MetricsRegistry empty;
  const obs::JsonValue report = obs::build_report(in, empty);
  EXPECT_EQ(obs::validate_report(report), "");
  EXPECT_EQ(report.at("registry").at("counters").members().size(), 0u);
}

}  // namespace
}  // namespace micco
