// The incremental-scheduler equivalence contract (DESIGN.md §9): the
// delta-maintained hot path (--sched-incremental=on, the default) and the
// recompute-from-view reference path must produce byte-identical decision
// logs, cluster-event logs and run reports — the only permitted report
// difference is the pattern-cache counter pair, which is registered only on
// the incremental path. Exercised across the three Table VI meson
// workloads, a fault-recovery sweep, the reuse-tier visit ordering and
// clusters past the 64-bit mask word. Plus the PatternCache unit suite:
// epoch-keyed hits, invalidation on eviction, discard and device failure,
// and counter export.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "faults/fault_plan.hpp"
#include "gpusim/cluster.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/telemetry.hpp"
#include "redstar/correlator.hpp"
#include "sched/micco_scheduler.hpp"
#include "sched/reuse_pattern.hpp"
#include "sched/scheduler.hpp"
#include "workload/synthetic.hpp"

namespace micco {
namespace {

/// Restores the default (incremental on) on scope exit so one test's mode
/// never leaks into another.
class ScopedMode {
 public:
  explicit ScopedMode(bool on) { set_sched_incremental(on); }
  ~ScopedMode() { set_sched_incremental(true); }
};

std::string decisions_dump(const obs::MemoryEventSink& sink) {
  std::string out;
  for (const obs::DecisionEvent& e : sink.decisions()) {
    out += e.to_json().dump();
    out += '\n';
  }
  return out;
}

std::string cluster_events_dump(const obs::MemoryEventSink& sink) {
  std::string out;
  for (const obs::ClusterEvent& e : sink.cluster_events()) {
    out += e.to_json().dump();
    out += '\n';
  }
  return out;
}

/// Deep copy with the two pattern-cache counter keys removed — the single
/// intentional report difference between the modes.
obs::JsonValue strip_cache_counters(const obs::JsonValue& v) {
  using obs::JsonValue;
  switch (v.kind()) {
    case JsonValue::Kind::kObject: {
      JsonValue out = JsonValue::object();
      for (const auto& [key, value] : v.members()) {
        if (key == obs::names::kSchedPatternCacheHits ||
            key == obs::names::kSchedPatternCacheMisses) {
          continue;
        }
        out.set(key, strip_cache_counters(value));
      }
      return out;
    }
    case JsonValue::Kind::kArray: {
      JsonValue out = JsonValue::array();
      for (const JsonValue& item : v.items()) {
        out.push_back(strip_cache_counters(item));
      }
      return out;
    }
    default:
      return v;
  }
}

bool report_mentions_cache(const obs::JsonValue& report) {
  return report.dump().find(obs::names::kSchedPatternCacheHits) !=
         std::string::npos;
}

struct ModeRun {
  std::string decisions;
  std::string cluster_events;
  std::string stripped_report;
  bool cache_counters_present = false;
};

ModeRun run_mode(bool incremental, const WorkloadStream& stream, int gpus,
                 const FaultPlan* plan = nullptr,
                 PairOrdering ordering = PairOrdering::kAsGiven,
                 std::uint64_t capacity = 256ull << 20) {
  const ScopedMode mode(incremental);
  obs::MemoryEventSink sink;
  obs::Telemetry telemetry;
  telemetry.sink = &sink;

  MiccoSchedulerOptions options;
  options.bounds = ReuseBounds{1, 1, 1};  // tiers admit *and* overflow
  MiccoScheduler scheduler(options);

  ClusterConfig cluster;
  cluster.num_devices = gpus;
  cluster.device_capacity_bytes = capacity;

  RunOptions run_options;
  run_options.telemetry = &telemetry;
  run_options.faults = plan;
  run_options.ordering = ordering;
  RunResult result = run_stream(stream, scheduler, cluster, run_options);
  EXPECT_TRUE(result.completed) << result.error;
  result.scheduling_overhead_ms = 0.0;  // the one wall-clock report field

  ModeRun out;
  out.decisions = decisions_dump(sink);
  out.cluster_events = cluster_events_dump(sink);
  const obs::JsonValue report = make_run_report(result, telemetry);
  out.cache_counters_present = report_mentions_cache(report);
  out.stripped_report = strip_cache_counters(report).dump();
  return out;
}

void expect_modes_identical(const WorkloadStream& stream, int gpus,
                            const FaultPlan* plan = nullptr,
                            PairOrdering ordering = PairOrdering::kAsGiven) {
  const ModeRun on = run_mode(true, stream, gpus, plan, ordering);
  const ModeRun off = run_mode(false, stream, gpus, plan, ordering);
  ASSERT_FALSE(on.decisions.empty());
  EXPECT_EQ(on.decisions, off.decisions);
  EXPECT_EQ(on.cluster_events, off.cluster_events);
  EXPECT_EQ(on.stripped_report, off.stripped_report);
  // The cache pair is the single intentional report difference.
  EXPECT_TRUE(on.cache_counters_present);
  EXPECT_FALSE(off.cache_counters_present);
}

// ------------------------------------------------------- end-to-end identity

/// Table VI shapes shrunk the same way test_integration.cpp does (fewer
/// time slices, smaller extent/batch): the diagram structure — and with it
/// the residency/reuse behaviour the two paths must agree on — is
/// unchanged, only the simulated tensor volume shrinks.
redstar::CorrelatorSpec shrunk(redstar::CorrelatorSpec spec) {
  spec.time_slices = 3;
  spec.extent = 32;
  spec.batch = 2;
  return spec;
}

TEST(SchedIncremental, A1RhopiByteIdenticalAcrossModes) {
  const redstar::CorrelatorWorkload w =
      redstar::build_workload(shrunk(redstar::make_a1_rhopi()));
  expect_modes_identical(w.stream, 8);
}

TEST(SchedIncremental, F0d2ByteIdenticalAcrossModes) {
  const redstar::CorrelatorWorkload w =
      redstar::build_workload(shrunk(redstar::make_f0d2()));
  expect_modes_identical(w.stream, 8);
}

TEST(SchedIncremental, F0d4ByteIdenticalAcrossModes) {
  const redstar::CorrelatorWorkload w =
      redstar::build_workload(shrunk(redstar::make_f0d4()));
  expect_modes_identical(w.stream, 8);
}

SyntheticConfig synth(int vectors, int vector_size, std::uint64_t seed) {
  SyntheticConfig c;
  c.num_vectors = vectors;
  c.vector_size = vector_size;
  c.tensor_extent = 64;
  c.batch = 2;
  c.repeated_rate = 0.5;
  c.seed = seed;
  return c;
}

TEST(SchedIncremental, ReuseTierOrderingByteIdenticalAcrossModes) {
  // kReuseTierFirst classifies every pair up front (through the epoch-keyed
  // cache on the incremental path) to sort the visit order — the ordering
  // itself must come out identical.
  const WorkloadStream stream = generate_synthetic(synth(5, 24, 11));
  expect_modes_identical(stream, 4, nullptr, PairOrdering::kReuseTierFirst);
}

TEST(SchedIncremental, FaultSweepByteIdenticalAcrossModes) {
  const WorkloadStream stream = generate_synthetic(synth(6, 24, 7));
  FaultPlan plan;
  plan.device_failures.push_back(DeviceFailure{2, 0.001});
  plan.transfer.probability = 0.05;
  plan.transfer.seed = 99;
  expect_modes_identical(stream, 4, &plan);
}

TEST(SchedIncremental, WideClustersByteIdenticalAcrossModes) {
  // 64 exactly fills the inline mask word; 70 exercises the spill words in
  // both the residency masks and the alive-mask fallback scan.
  const WorkloadStream stream = generate_synthetic(synth(6, 96, 21));
  expect_modes_identical(stream, 64);
  expect_modes_identical(stream, 70);
}

TEST(SchedIncremental, WideClusterFailuresByteIdenticalAcrossModes) {
  // Failing device 65 flips a bit in the second alive-mask word mid-run;
  // the recovery path must keep the two modes in lockstep.
  const WorkloadStream stream = generate_synthetic(synth(6, 96, 22));
  FaultPlan plan;
  plan.device_failures.push_back(DeviceFailure{65, 0.001});
  plan.device_failures.push_back(DeviceFailure{3, 0.002});
  expect_modes_identical(stream, 70, &plan);
}

// --------------------------------------------------------- PatternCache unit

TensorDesc desc(TensorId id) { return TensorDesc{id, 2, 16, 1}; }

ContractionTask task_of(TensorId a, TensorId b, TensorId out) {
  return ContractionTask{desc(a), desc(b), desc(out)};
}

ClusterSimulator sim_of(int devices, std::uint64_t capacity = 1ULL << 20) {
  ClusterConfig config;
  config.num_devices = devices;
  config.device_capacity_bytes = capacity;
  return ClusterSimulator(config);
}

TEST(PatternCache, HitsWhileEpochsUnchanged) {
  ClusterSimulator sim = sim_of(2);
  ASSERT_TRUE(sim.execute(task_of(1, 2, 3), 0).ok());
  const ClusterIndex& index = *sim.cluster_index();

  PatternCache cache;
  const LocalReusePattern first = cache.classify(task_of(1, 2, 4), index);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);

  const LocalReusePattern second = cache.classify(task_of(1, 2, 4), index);
  EXPECT_EQ(second, first);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);

  // Distinct pair: its own entry, not a false hit on (1, 2).
  (void)cache.classify(task_of(1, 5, 6), index);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(PatternCache, MatchesReferenceClassification) {
  ClusterSimulator sim = sim_of(3);
  ASSERT_TRUE(sim.execute(task_of(1, 2, 3), 0).ok());
  ASSERT_TRUE(sim.execute(task_of(2, 4, 5), 1).ok());
  const ClusterIndex& index = *sim.cluster_index();

  PatternCache cache;
  const ContractionTask probes[] = {
      task_of(1, 2, 90),  // both resident, dev 0 holds both
      task_of(1, 4, 91),  // both resident, disjoint holders
      task_of(3, 7, 92),  // one resident
      task_of(7, 8, 93),  // neither resident
      task_of(2, 2, 94),  // same operand twice
  };
  for (const ContractionTask& probe : probes) {
    // Twice: the miss path and the hit path must both agree with the
    // recompute-from-view reference.
    EXPECT_EQ(cache.classify(probe, index), classify_pair(probe, sim));
    EXPECT_EQ(cache.classify(probe, index), classify_pair(probe, sim));
  }
}

TEST(PatternCache, DiscardInvalidates) {
  ClusterSimulator sim = sim_of(2);
  ASSERT_TRUE(sim.execute(task_of(1, 2, 3), 0).ok());
  const ClusterIndex& index = *sim.cluster_index();

  PatternCache cache;
  (void)cache.classify(task_of(1, 2, 4), index);
  sim.discard(1);  // residency change -> epoch bump -> stale entry
  (void)cache.classify(task_of(1, 2, 4), index);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(PatternCache, DeviceFailureInvalidates) {
  ClusterSimulator sim = sim_of(2);
  ASSERT_TRUE(sim.execute(task_of(1, 2, 3), 0).ok());
  const ClusterIndex& index = *sim.cluster_index();

  PatternCache cache;
  (void)cache.classify(task_of(1, 2, 4), index);
  sim.fail_device(0, 0.0);  // recovery path must bump epochs too
  const LocalReusePattern after = cache.classify(task_of(1, 2, 4), index);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(after, classify_pair(task_of(1, 2, 4), sim));
}

TEST(PatternCache, EvictionInvalidates) {
  // Capacity fits one task's three tensors (3 * 4 KiB of complex doubles);
  // the second task's working set can only be fetched by evicting the
  // first's.
  ClusterSimulator sim = sim_of(1, 13 * 1024);
  ASSERT_TRUE(sim.execute(task_of(1, 2, 3), 0).ok());
  const ClusterIndex& index = *sim.cluster_index();

  PatternCache cache;
  (void)cache.classify(task_of(1, 2, 4), index);
  ASSERT_TRUE(cache.classify(task_of(1, 2, 4), index) ==
              cache.classify(task_of(1, 2, 4), index));
  const std::uint64_t hits_before = cache.hits();

  ASSERT_TRUE(sim.execute(task_of(10, 11, 12), 0).ok());
  EXPECT_FALSE(sim.resident_on(0, 1));  // 1 was evicted to make room
  (void)cache.classify(task_of(1, 2, 4), index);
  EXPECT_EQ(cache.hits(), hits_before);  // stale entry missed, not hit
}

TEST(PatternCache, CountersFlowIntoRegistry) {
  ClusterSimulator sim = sim_of(2);
  ASSERT_TRUE(sim.execute(task_of(1, 2, 3), 0).ok());
  const ClusterIndex& index = *sim.cluster_index();

  obs::MetricsRegistry registry;
  obs::Counter& hits = registry.counter(obs::names::kSchedPatternCacheHits);
  obs::Counter& misses =
      registry.counter(obs::names::kSchedPatternCacheMisses);

  PatternCache cache;
  cache.set_counters(&hits, &misses);
  (void)cache.classify(task_of(1, 2, 4), index);
  (void)cache.classify(task_of(1, 2, 4), index);
  (void)cache.classify(task_of(5, 6, 7), index);
  EXPECT_EQ(hits.value(), 1);
  EXPECT_EQ(misses.value(), 2);
  EXPECT_EQ(static_cast<std::uint64_t>(hits.value()), cache.hits());
  EXPECT_EQ(static_cast<std::uint64_t>(misses.value()), cache.misses());
}

}  // namespace
}  // namespace micco
