#include "redstar/wick.hpp"

#include <gtest/gtest.h>

namespace micco::redstar {
namespace {

MesonOp pi_plus() { return MesonOp{"pi+", Flavor::kUp, Flavor::kDown, 0}; }
MesonOp pi_minus() { return MesonOp{"pi-", Flavor::kDown, Flavor::kUp, 0}; }
MesonOp pi_zero() { return MesonOp{"pi0", Flavor::kUp, Flavor::kUp, 0}; }
MesonOp kaon() { return MesonOp{"K+", Flavor::kUp, Flavor::kStrange, 0}; }

Construction single(const MesonOp& op) {
  Construction c;
  c.hadrons = {op};
  return c;
}

Construction pair_of(const MesonOp& a, const MesonOp& b) {
  Construction c;
  c.hadrons = {a, b};
  return c;
}

TEST(Flavor, Names) {
  EXPECT_STREQ(to_string(Flavor::kUp), "u");
  EXPECT_STREQ(to_string(Flavor::kStrange), "s");
}

TEST(MesonOp, KeyEncodesContentMomentumAndTime) {
  MesonOp op = pi_plus();
  op.momentum = 2;
  EXPECT_EQ(op.key(3), "pi+(ud,p=2,t=3)");
  EXPECT_NE(op.key(3), op.key(4));
}

TEST(FlavorBalance, ChargedMesonAgainstItselfBalances) {
  // <pi+(t) pi+^dagger(0)>: the conjugated source supplies the matching
  // antiquarks.
  EXPECT_TRUE(flavor_balanced(single(pi_plus()), single(pi_plus())));
}

TEST(FlavorBalance, MismatchedFlavorsRejected) {
  EXPECT_FALSE(flavor_balanced(single(kaon()), single(pi_plus())));
}

TEST(FlavorBalance, TwoParticleAgainstSingle) {
  // <pi+ pi- | pi0^dagger>: quarks u,d + conj(u,u) vs antiquarks d,u + u,u
  // -> balanced only if each flavor's quark/antiquark counts agree.
  EXPECT_TRUE(
      flavor_balanced(single(pi_zero()), pair_of(pi_plus(), pi_minus())));
}

TEST(Wick, SinglePionCorrelatorHasOneDiagram) {
  NodeRegistry reg(16, 1);
  const auto diagrams =
      enumerate_diagrams(single(pi_plus()), single(pi_plus()), 1, reg, 100);
  ASSERT_EQ(diagrams.size(), 1u);
  EXPECT_EQ(diagrams[0].node_count(), 2u);
  EXPECT_EQ(diagrams[0].edge_count(), 2u);  // quark + antiquark propagators
  EXPECT_TRUE(diagrams[0].connected());
}

TEST(Wick, UnbalancedFlavorsYieldNothing) {
  NodeRegistry reg(16, 1);
  EXPECT_TRUE(
      enumerate_diagrams(single(kaon()), single(pi_plus()), 1, reg, 100)
          .empty());
}

TEST(Wick, TadpolePairingsExcluded) {
  // pi0 = (u, ubar) could self-contract; those pairings must be skipped, so
  // <pi0 | pi0> still has exactly one (connected) diagram.
  NodeRegistry reg(16, 1);
  const auto diagrams =
      enumerate_diagrams(single(pi_zero()), single(pi_zero()), 1, reg, 100);
  ASSERT_EQ(diagrams.size(), 1u);
  EXPECT_TRUE(diagrams[0].connected());
}

TEST(Wick, TwoParticleCorrelatorHasMultipleDiagrams) {
  NodeRegistry reg(16, 1);
  const Construction pipi = pair_of(pi_plus(), pi_minus());
  const auto diagrams = enumerate_diagrams(pipi, pipi, 1, reg, 100);
  // Direct and quark-exchange topologies at least.
  EXPECT_GE(diagrams.size(), 2u);
  for (const ContractionGraph& g : diagrams) {
    EXPECT_EQ(g.node_count(), 4u);
    EXPECT_EQ(g.edge_count(), 4u);
  }
}

TEST(Wick, SharedHadronNodesAcrossDiagrams) {
  // All diagrams of one correlator at one time slice reference the same
  // interned hadron tensors - the data-reuse source.
  NodeRegistry reg(16, 1);
  const Construction pipi = pair_of(pi_plus(), pi_minus());
  const auto diagrams = enumerate_diagrams(pipi, pipi, 1, reg, 100);
  ASSERT_GE(diagrams.size(), 2u);
  EXPECT_EQ(reg.original_count(), 4u);  // 2 source + 2 sink hadrons only
}

TEST(Wick, SourceNodesSharedAcrossTimeSlices) {
  NodeRegistry reg(16, 1);
  const auto t1 =
      enumerate_diagrams(single(pi_plus()), single(pi_plus()), 1, reg, 100);
  const auto t2 =
      enumerate_diagrams(single(pi_plus()), single(pi_plus()), 2, reg, 100);
  ASSERT_EQ(t1.size(), 1u);
  ASSERT_EQ(t2.size(), 1u);
  // 1 source node + 2 sink nodes (t=1, t=2) = 3 originals: the source is
  // shared.
  EXPECT_EQ(reg.original_count(), 3u);
}

TEST(Wick, DiagramCapRespected) {
  NodeRegistry reg(16, 1);
  const Construction big =
      pair_of(pi_plus(), pi_minus());
  Construction bigger = big;
  bigger.hadrons.push_back(pi_zero());
  const auto diagrams = enumerate_diagrams(bigger, bigger, 1, reg, 2);
  EXPECT_LE(diagrams.size(), 2u);
}

TEST(Wick, CountMatchesEnumeration) {
  NodeRegistry reg(16, 1);
  const Construction pipi = pair_of(pi_plus(), pi_minus());
  EXPECT_EQ(count_diagrams(pipi, pipi, 1000),
            enumerate_diagrams(pipi, pipi, 1, reg, 1000).size());
}

TEST(Wick, DiagramCountGrowsWithParticleNumber) {
  const Construction one = single(pi_zero());
  const Construction two = pair_of(pi_plus(), pi_minus());
  Construction three = two;
  three.hadrons.push_back(pi_zero());
  EXPECT_LT(count_diagrams(one, one, 1000), count_diagrams(two, two, 1000));
  EXPECT_LT(count_diagrams(two, two, 1000),
            count_diagrams(three, three, 1000));
}

}  // namespace
}  // namespace micco::redstar
