// End-to-end tests of the scheduling daemon: a real Server on a Unix-domain
// socket, driven through the Client library — submit/status/result/stats/
// drain, deterministic serving (byte-identical decision logs and span
// traces across sessions), trace-id propagation into the span file, the
// metrics verb against offline trace recomputation, injected-clock latency
// accounting, concurrent submits from many client threads, oversized-frame
// handling over the wire, and fault-tolerant serving.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/report.hpp"
#include "parallel/parallel.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "workload/serialize.hpp"
#include "workload/synthetic.hpp"

namespace micco::service {
namespace {

/// Fresh socket path for one test (unlinks any stale leftover).
std::string test_socket_path(const std::string& tag) {
  const std::string path =
      "/tmp/micco_svc_" + std::to_string(::getpid()) + "_" + tag + ".sock";
  ::unlink(path.c_str());
  return path;
}

std::string tmp_file_path(const std::string& tag) {
  return "/tmp/micco_svc_" + std::to_string(::getpid()) + "_" + tag;
}

/// A small deterministic workload serialized to the wire text format.
std::string workload_text(std::uint64_t seed, int vectors = 1,
                          int vector_size = 8) {
  SyntheticConfig cfg;
  cfg.num_vectors = vectors;
  cfg.vector_size = vector_size;
  cfg.seed = seed;
  std::ostringstream out;
  save_stream(generate_synthetic(cfg), out);
  return out.str();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Runs serve() on a background thread once start() succeeded.
class ServeSession {
 public:
  explicit ServeSession(ServerConfig config) : server_(std::move(config)) {}

  ~ServeSession() {
    if (thread_.joinable()) {
      server_.request_shutdown();
      thread_.join();
    }
  }

  bool begin(std::string* error) {
    if (!server_.start(error)) return false;
    thread_ = std::thread([this] { exit_code_ = server_.serve(); });
    return true;
  }

  int join() {
    thread_.join();
    return exit_code_;
  }

  Server& server() { return server_; }

 private:
  Server server_;
  std::thread thread_;
  int exit_code_ = -1;
};

/// Polls status until the job leaves QUEUED/RUNNING; returns the final
/// status reply.
obs::JsonValue wait_for_job(Client& client, std::uint64_t job_id) {
  for (;;) {
    std::string error;
    const auto reply = client.status(job_id, &error);
    EXPECT_TRUE(reply.has_value()) << error;
    if (!reply.has_value()) return obs::JsonValue();
    const std::string& state = reply->at("state").as_string();
    if (state != "QUEUED" && state != "RUNNING") return *reply;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

TEST(Service, EndToEndSubmitStatusResultDrain) {
  const std::string socket = test_socket_path("e2e");
  const std::string report_path = tmp_file_path("e2e_report.json");
  ServerConfig config;
  config.socket_path = socket;
  config.cluster.num_devices = 4;
  config.report_path = report_path;

  ServeSession session(std::move(config));
  std::string error;
  ASSERT_TRUE(session.begin(&error)) << error;

  Client client;
  ASSERT_TRUE(client.connect(socket, &error)) << error;

  const auto submitted =
      client.submit("alice", "first-job", workload_text(11), &error);
  ASSERT_TRUE(submitted.has_value()) << error;
  ASSERT_TRUE(submitted->at("ok").as_bool()) << submitted->dump();
  const auto job_id =
      static_cast<std::uint64_t>(submitted->at("job_id").as_int());
  EXPECT_EQ(job_id, 1u);
  EXPECT_EQ(submitted->at("state").as_string(), "QUEUED");

  const obs::JsonValue final_status = wait_for_job(client, job_id);
  EXPECT_EQ(final_status.at("state").as_string(), "DONE");
  EXPECT_EQ(final_status.at("tenant").as_string(), "alice");
  EXPECT_EQ(final_status.at("job_name").as_string(), "first-job");

  // The result document is available both piggybacked on status and via a
  // dedicated result request.
  const auto result_reply = client.result(job_id, &error);
  ASSERT_TRUE(result_reply.has_value()) << error;
  ASSERT_TRUE(result_reply->at("ok").as_bool()) << result_reply->dump();
  const obs::JsonValue& result = result_reply->at("result");
  EXPECT_TRUE(result.at("completed").as_bool());
  EXPECT_GT(result.at("makespan_s").as_double(), 0.0);
  EXPECT_GT(result.at("gflops").as_double(), 0.0);
  EXPECT_EQ(result.at("vectors").as_int(), 1);

  // Unknown job → structured error, connection stays usable.
  const auto unknown = client.status(999, &error);
  ASSERT_TRUE(unknown.has_value()) << error;
  EXPECT_FALSE(unknown->at("ok").as_bool());
  EXPECT_EQ(unknown->at("code").as_string(), error_code::kUnknownJob);

  // Result of a queued-but-unfinished job → not_finished. Submit during
  // normal serving, then query result immediately after drain begins.
  const auto stats = client.stats(&error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_EQ(stats->at("stats").at("completed").as_int(), 1);

  // Pipeline the drain request and a follow-up submit in a single write so
  // the server handles both frames in the same pass: once drain lands, the
  // submit must get a structured `draining` reject (not a dropped
  // connection), even though the idle server stops right after.
  const std::string pipelined =
      encode_frame(make_plain_request(MessageType::kDrain)) +
      encode_frame(make_submit_request("alice", "", workload_text(12)));
  ASSERT_TRUE(client.send_raw(pipelined, &error)) << error;
  const auto drained = client.read_reply(&error);
  ASSERT_TRUE(drained.has_value()) << error;
  EXPECT_TRUE(drained->at("ok").as_bool()) << drained->dump();
  const auto rejected = client.read_reply(&error);
  ASSERT_TRUE(rejected.has_value()) << error;
  EXPECT_FALSE(rejected->at("ok").as_bool());
  EXPECT_EQ(rejected->at("code").as_string(), error_code::kDraining);

  client.close();
  EXPECT_EQ(session.join(), 0);

  // The session wrote a report that parses and validates like batch runs.
  const std::string report_text = read_file(report_path);
  ASSERT_FALSE(report_text.empty());
  const auto report = obs::parse_json(report_text, &error);
  ASSERT_TRUE(report.has_value()) << error;
  EXPECT_EQ(obs::validate_report(*report), "");
  EXPECT_EQ(report->at("metrics").at("jobs_run").as_int(), 1);
  std::remove(report_path.c_str());
}

TEST(Service, DeterministicDecisionLogsAcrossSessions) {
  // Two serial (--threads=1 equivalent) sessions fed the same submission
  // sequence must produce byte-identical decision logs AND byte-identical
  // span traces (the client mints trace ids as a pure function of the
  // submit arguments, and spans record only deterministic data).
  std::vector<std::string> logs;
  std::vector<std::string> traces;
  for (int round = 0; round < 2; ++round) {
    const std::string tag = "det" + std::to_string(round);
    const std::string socket = test_socket_path(tag);
    const std::string decisions = tmp_file_path(tag + ".jsonl");
    const std::string spans = tmp_file_path(tag + "_spans.jsonl");
    ServerConfig config;
    config.socket_path = socket;
    config.cluster.num_devices = 4;
    config.seed = 7;
    config.io_lanes = 0;  // serial: I/O and dispatch share one thread
    config.decisions_path = decisions;
    config.spans_path = spans;

    ServeSession session(std::move(config));
    std::string error;
    ASSERT_TRUE(session.begin(&error)) << error;

    Client client;
    ASSERT_TRUE(client.connect(socket, &error)) << error;
    for (const std::uint64_t seed : {21u, 22u, 23u}) {
      const std::string tenant = seed % 2 == 0 ? "even" : "odd";
      const auto reply =
          client.submit(tenant, "", workload_text(seed), &error);
      ASSERT_TRUE(reply.has_value()) << error;
      ASSERT_TRUE(reply->at("ok").as_bool()) << reply->dump();
    }
    // Wait for the backlog, then drain.
    wait_for_job(client, 3);
    ASSERT_TRUE(client.drain(&error).has_value()) << error;
    client.close();
    EXPECT_EQ(session.join(), 0);

    logs.push_back(read_file(decisions));
    traces.push_back(read_file(spans));
    std::remove(decisions.c_str());
    std::remove(spans.c_str());
  }
  ASSERT_FALSE(logs[0].empty());
  EXPECT_EQ(logs[0], logs[1]) << "decision logs diverged across sessions";
  ASSERT_FALSE(traces[0].empty());
  EXPECT_EQ(traces[0], traces[1]) << "span traces diverged across sessions";
}

TEST(Service, TraceIdPropagatesFromClientToSpanFile) {
  const std::string socket = test_socket_path("trace");
  const std::string spans = tmp_file_path("trace_spans.jsonl");
  ServerConfig config;
  config.socket_path = socket;
  config.cluster.num_devices = 4;
  config.spans_path = spans;

  ServeSession session(std::move(config));
  std::string error;
  ASSERT_TRUE(session.begin(&error)) << error;

  Client client;
  ASSERT_TRUE(client.connect(socket, &error)) << error;
  const auto reply =
      client.submit("alice", "traced-job", workload_text(41, 2, 8), &error);
  ASSERT_TRUE(reply.has_value()) << error;
  ASSERT_TRUE(reply->at("ok").as_bool()) << reply->dump();
  // The daemon echoes the client-minted trace id on the submit reply, and
  // the id is a pure function of (tenant, job name, submit sequence).
  const std::string trace_id = reply->at("trace").as_string();
  EXPECT_EQ(trace_id, Client::mint_trace_id("alice", "traced-job", 0));
  wait_for_job(client,
               static_cast<std::uint64_t>(reply->at("job_id").as_int()));
  ASSERT_TRUE(client.drain(&error).has_value()) << error;
  client.close();
  EXPECT_EQ(session.join(), 0);

  // Every span in the session trace carries that id, sequence numbers are
  // contiguous from 0, and the root "job" span is emitted last so it can
  // carry the job outcome.
  std::istringstream lines(read_file(spans));
  std::string line;
  std::set<std::string> span_names;
  std::int64_t expected_seq = 0;
  std::int64_t root_seq = -1;
  while (std::getline(lines, line)) {
    const auto doc = obs::parse_json(line, &error);
    ASSERT_TRUE(doc.has_value()) << error << ": " << line;
    EXPECT_EQ(doc->at("trace").as_string(), trace_id);
    EXPECT_EQ(doc->at("seq").as_int(), expected_seq++);
    span_names.insert(doc->at("name").as_string());
    if (doc->at("parent").as_int() == 0) {
      EXPECT_EQ(doc->at("name").as_string(), obs::names::kSpanJob);
      EXPECT_EQ(doc->at("span").as_int(), 1);
      EXPECT_EQ(doc->at("tenant").as_string(), "alice");
      root_seq = doc->at("seq").as_int();
    }
  }
  ASSERT_GT(expected_seq, 0);
  EXPECT_EQ(root_seq, expected_seq - 1) << "root span must be emitted last";
  for (const char* name :
       {obs::names::kSpanJob, obs::names::kSpanQueue,
        obs::names::kSpanDispatch, obs::names::kSpanSched,
        obs::names::kSpanExec}) {
    EXPECT_EQ(span_names.count(name), 1u) << name;
  }
  std::remove(spans.c_str());
}

TEST(Service, MetricsVerbQuantilesMatchOfflineTraceRecomputation) {
  // The served per-tenant job_sim_ms summary must be exactly reproducible
  // offline from the trace file: root job spans record the simulated
  // makespan, and the offline histogram shares bounds and interpolation
  // code with the one the daemon serves.
  const std::string socket = test_socket_path("metrics");
  const std::string spans = tmp_file_path("metrics_spans.jsonl");
  ServerConfig config;
  config.socket_path = socket;
  config.cluster.num_devices = 4;
  config.spans_path = spans;

  ServeSession session(std::move(config));
  std::string error;
  ASSERT_TRUE(session.begin(&error)) << error;

  Client client;
  ASSERT_TRUE(client.connect(socket, &error)) << error;
  std::uint64_t last_job = 0;
  for (const std::uint64_t seed : {51u, 52u, 53u, 54u}) {
    const auto reply = client.submit(
        "alice", "", workload_text(seed, /*vectors=*/2, /*vector_size=*/10),
        &error);
    ASSERT_TRUE(reply.has_value()) << error;
    ASSERT_TRUE(reply->at("ok").as_bool()) << reply->dump();
    last_job = static_cast<std::uint64_t>(reply->at("job_id").as_int());
  }
  wait_for_job(client, last_job);

  const auto metrics_reply = client.metrics(&error);
  ASSERT_TRUE(metrics_reply.has_value()) << error;
  ASSERT_TRUE(metrics_reply->at("ok").as_bool()) << metrics_reply->dump();
  const obs::JsonValue& served =
      metrics_reply->at("metrics").at("histograms").at(
          obs::names::tenant_metric("alice", obs::names::kTenantJobSimMs));
  EXPECT_EQ(served.at("count").as_int(), 4);
  // The Prometheus exposition carries the same series.
  const std::string prom = metrics_reply->at("prometheus").as_string();
  EXPECT_NE(prom.find("micco_service_tenant_alice_job_sim_ms_bucket"),
            std::string::npos)
      << prom;

  ASSERT_TRUE(client.drain(&error).has_value()) << error;
  client.close();
  EXPECT_EQ(session.join(), 0);

  // Offline recomputation from the root job spans, through the shared
  // fixed-boundary quantile code: sums and quantiles match the served
  // values exactly (json_number doubles round-trip shortest).
  obs::Histogram offline(obs::names::job_sim_ms_bounds());
  std::istringstream lines(read_file(spans));
  std::string line;
  while (std::getline(lines, line)) {
    const auto doc = obs::parse_json(line, &error);
    ASSERT_TRUE(doc.has_value()) << error << ": " << line;
    if (doc->at("parent").as_int() == 0) {
      offline.observe(doc->at("duration_ms").as_double());
    }
  }
  EXPECT_EQ(offline.count(), 4u);
  EXPECT_EQ(served.at("sum").as_double(), offline.sum());
  EXPECT_EQ(served.at("mean").as_double(), offline.mean());
  EXPECT_EQ(served.at("p50").as_double(), offline.quantile(0.5));
  EXPECT_EQ(served.at("p90").as_double(), offline.quantile(0.9));
  EXPECT_EQ(served.at("p99").as_double(), offline.quantile(0.99));
  std::remove(spans.c_str());
}

TEST(Service, InjectedManualClockScriptsLatenciesAndUptime) {
  // All scripting happens before the server thread exists (thread creation
  // orders it), and the clock never moves afterwards — so every wall
  // latency the daemon records is scripted to exactly zero, uptime is
  // exactly zero, and the session stamp is the scripted wall time. A
  // system clock could not produce this reply.
  obs::ManualClock manual;
  manual.set_wall("2026-02-03T04:05:06Z");
  manual.advance_ms(1000.0);

  const std::string socket = test_socket_path("clock");
  ServerConfig config;
  config.socket_path = socket;
  config.cluster.num_devices = 2;
  config.clock = &manual;

  ServeSession session(std::move(config));
  std::string error;
  ASSERT_TRUE(session.begin(&error)) << error;

  Client client;
  ASSERT_TRUE(client.connect(socket, &error)) << error;
  const auto reply = client.submit("alice", "", workload_text(61), &error);
  ASSERT_TRUE(reply.has_value()) << error;
  ASSERT_TRUE(reply->at("ok").as_bool()) << reply->dump();
  wait_for_job(client,
               static_cast<std::uint64_t>(reply->at("job_id").as_int()));

  const auto metrics_reply = client.metrics(&error);
  ASSERT_TRUE(metrics_reply.has_value()) << error;
  ASSERT_TRUE(metrics_reply->at("ok").as_bool()) << metrics_reply->dump();
  EXPECT_EQ(metrics_reply->at("uptime_s").as_double(), 0.0);
  EXPECT_EQ(metrics_reply->at("started_at").as_string(),
            "2026-02-03T04:05:06Z");

  const obs::JsonValue& hists = metrics_reply->at("metrics").at("histograms");
  const obs::JsonValue& queue =
      hists.at(obs::names::kServiceQueueLatencyMs);
  EXPECT_EQ(queue.at("count").as_int(), 1);
  EXPECT_EQ(queue.at("sum").as_double(), 0.0);
  const obs::JsonValue& e2e = hists.at(
      obs::names::tenant_metric("alice", obs::names::kTenantE2eLatencyMs));
  EXPECT_EQ(e2e.at("count").as_int(), 1);
  EXPECT_EQ(e2e.at("sum").as_double(), 0.0);
  // Simulated makespan does not come from the wall clock: it stays nonzero
  // even with time frozen.
  const obs::JsonValue& sim = hists.at(
      obs::names::tenant_metric("alice", obs::names::kTenantJobSimMs));
  EXPECT_EQ(sim.at("count").as_int(), 1);
  EXPECT_GT(sim.at("sum").as_double(), 0.0);

  ASSERT_TRUE(client.drain(&error).has_value()) << error;
  client.close();
  EXPECT_EQ(session.join(), 0);
}

TEST(Service, ConcurrentSubmitsFromEightThreads) {
  // Eight client threads hammer a parallel-mode server; accounting must
  // balance exactly (admitted + rejected == submitted, everything admitted
  // eventually completes) and the totals must match a serial session's.
  parallel::set_threads(4);  // dispatcher + 3 I/O lanes
  constexpr int kThreads = 8;
  constexpr int kJobsPerThread = 3;

  std::map<std::string, std::int64_t> totals;
  for (const int lanes : {3, 0}) {  // parallel first, then serial reference
    const std::string tag = "conc" + std::to_string(lanes);
    const std::string socket = test_socket_path(tag);
    ServerConfig config;
    config.socket_path = socket;
    config.cluster.num_devices = 2;
    config.io_lanes = lanes;
    config.admission.max_queue_per_tenant = kJobsPerThread;
    config.admission.max_queued_total = kThreads * kJobsPerThread;

    ServeSession session(std::move(config));
    std::string error;
    ASSERT_TRUE(session.begin(&error)) << error;

    std::vector<std::thread> clients;
    clients.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      clients.emplace_back([&socket, t] {
        Client client;
        std::string client_error;
        ASSERT_TRUE(client.connect(socket, &client_error)) << client_error;
        const std::string tenant = "tenant-" + std::to_string(t);
        std::vector<std::uint64_t> ids;
        for (int j = 0; j < kJobsPerThread; ++j) {
          const auto reply = client.submit(
              tenant, "",
              workload_text(static_cast<std::uint64_t>(100 + t),
                            /*vectors=*/1, /*vector_size=*/6),
              &client_error);
          ASSERT_TRUE(reply.has_value()) << client_error;
          ASSERT_TRUE(reply->at("ok").as_bool()) << reply->dump();
          ids.push_back(
              static_cast<std::uint64_t>(reply->at("job_id").as_int()));
        }
        for (const std::uint64_t id : ids) {
          const obs::JsonValue final_status = wait_for_job(client, id);
          EXPECT_EQ(final_status.at("state").as_string(), "DONE");
        }
      });
    }
    for (std::thread& t : clients) t.join();

    Client control;
    ASSERT_TRUE(control.connect(socket, &error)) << error;
    const auto stats_reply = control.stats(&error);
    ASSERT_TRUE(stats_reply.has_value()) << error;
    const obs::JsonValue& stats = stats_reply->at("stats");
    EXPECT_EQ(stats.at("submitted").as_int(), kThreads * kJobsPerThread);
    EXPECT_EQ(stats.at("admitted").as_int() + stats.at("rejected").as_int(),
              stats.at("submitted").as_int());
    EXPECT_EQ(stats.at("completed").as_int(), stats.at("admitted").as_int());
    EXPECT_EQ(stats.at("failed").as_int(), 0);

    if (lanes != 0) {
      for (const auto& [key, value] : stats.members()) {
        if (value.kind() == obs::JsonValue::Kind::kInt) {
          totals[key] = value.as_int();
        }
      }
    } else {
      // Serial session, same submissions: identical accounting totals.
      for (const auto& [key, value] : stats.members()) {
        if (value.kind() == obs::JsonValue::Kind::kInt) {
          EXPECT_EQ(value.as_int(), totals[key]) << key;
        }
      }
    }
    ASSERT_TRUE(control.drain(&error).has_value()) << error;
    control.close();
    EXPECT_EQ(session.join(), 0);
  }
}

TEST(Service, OversizedFrameGetsStructuredErrorOverTheWire) {
  const std::string socket = test_socket_path("oversize");
  ServerConfig config;
  config.socket_path = socket;
  config.cluster.num_devices = 2;
  config.max_frame_bytes = 512;

  ServeSession session(std::move(config));
  std::string error;
  ASSERT_TRUE(session.begin(&error)) << error;

  Client client;
  ASSERT_TRUE(client.connect(socket, &error)) << error;

  // A submit whose frame blows past the 512-byte ceiling.
  const auto oversized =
      client.submit("big", "", std::string(4096, 'x'), &error);
  ASSERT_TRUE(oversized.has_value()) << error;
  EXPECT_FALSE(oversized->at("ok").as_bool());
  EXPECT_EQ(oversized->at("code").as_string(), error_code::kFrameTooLong);

  // The connection survives: a small request on the same socket still works.
  const auto stats = client.stats(&error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_TRUE(stats->at("ok").as_bool());

  // Malformed workload text (frame fits, payload does not parse).
  const auto bad = client.submit("big", "", "not a workload", &error);
  ASSERT_TRUE(bad.has_value()) << error;
  EXPECT_FALSE(bad->at("ok").as_bool());
  EXPECT_EQ(bad->at("code").as_string(), error_code::kBadWorkload);

  ASSERT_TRUE(client.drain(&error).has_value()) << error;
  client.close();
  EXPECT_EQ(session.join(), 0);
}

TEST(Service, MalformedFramesGetStructuredErrorReplies) {
  const std::string socket = test_socket_path("badframe");
  ServerConfig config;
  config.socket_path = socket;
  config.cluster.num_devices = 2;

  ServeSession session(std::move(config));
  std::string error;
  ASSERT_TRUE(session.begin(&error)) << error;

  Client client;
  ASSERT_TRUE(client.connect(socket, &error)) << error;
  // Valid JSON that is not a request object → bad_request.
  const auto reply = client.call(obs::JsonValue("not an object"), &error);
  ASSERT_TRUE(reply.has_value()) << error;
  EXPECT_FALSE(reply->at("ok").as_bool());
  EXPECT_EQ(reply->at("code").as_string(), error_code::kBadRequest);

  // A line that is not JSON at all → bad_frame, over a raw socket.
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  ASSERT_LT(socket.size(), sizeof(addr.sun_path));
  std::memcpy(addr.sun_path, socket.c_str(), socket.size() + 1);
  const int raw = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(raw, 0);
  ASSERT_EQ(::connect(raw, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const std::string garbage = "this is not json\n";
  ASSERT_EQ(::send(raw, garbage.data(), garbage.size(), 0),
            static_cast<ssize_t>(garbage.size()));
  FrameReader raw_reader;
  std::optional<std::string> line;
  while (!line.has_value()) {
    char buf[4096];
    const ssize_t n = ::recv(raw, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0);
    raw_reader.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    line = raw_reader.next_frame();
  }
  ::close(raw);
  const auto bad_frame = obs::parse_json(*line, &error);
  ASSERT_TRUE(bad_frame.has_value()) << error;
  EXPECT_FALSE(bad_frame->at("ok").as_bool());
  EXPECT_EQ(bad_frame->at("code").as_string(), error_code::kBadFrame);

  ASSERT_TRUE(client.drain(&error).has_value()) << error;
  client.close();
  EXPECT_EQ(session.join(), 0);
}

TEST(Service, ServesThroughInjectedDeviceFailure) {
  const std::string socket = test_socket_path("faults");
  FaultPlan plan;
  plan.device_failures.push_back(DeviceFailure{1, 1e-4});
  ServerConfig config;
  config.socket_path = socket;
  config.cluster.num_devices = 4;
  config.faults = &plan;

  ServeSession session(std::move(config));
  std::string error;
  ASSERT_TRUE(session.begin(&error)) << error;

  Client client;
  ASSERT_TRUE(client.connect(socket, &error)) << error;
  const auto reply =
      client.submit("resilient", "", workload_text(31, 2, 12), &error);
  ASSERT_TRUE(reply.has_value()) << error;
  ASSERT_TRUE(reply->at("ok").as_bool()) << reply->dump();
  const obs::JsonValue final_status = wait_for_job(
      client, static_cast<std::uint64_t>(reply->at("job_id").as_int()));
  EXPECT_EQ(final_status.at("state").as_string(), "DONE");
  const obs::JsonValue& result = final_status.at("result");
  EXPECT_EQ(result.at("devices_lost").as_int(), 1);
  EXPECT_TRUE(result.at("recovered").as_bool());

  ASSERT_TRUE(client.drain(&error).has_value()) << error;
  client.close();
  EXPECT_EQ(session.join(), 0);
}

TEST(Service, AutoMintedIdempotencyTokensAreDistinctAcrossClients) {
  // Auto-minted tokens carry per-client entropy on top of the deterministic
  // trace id: two independent clients submitting the same (tenant, name) —
  // the shape of two separate CLI invocations — must admit two jobs, not
  // have the second silently answered as a duplicate of the first.
  const std::string socket = test_socket_path("autotok");
  ServerConfig config;
  config.socket_path = socket;
  config.cluster.num_devices = 4;
  ServeSession session(std::move(config));
  std::string error;
  ASSERT_TRUE(session.begin(&error)) << error;

  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.base_backoff_s = 1e-4;

  Client first;
  ASSERT_TRUE(first.connect(socket, &error)) << error;
  const auto a = first.submit_retrying("alice", "same-name",
                                       workload_text(61), "", policy, &error);
  ASSERT_TRUE(a.has_value()) << error;
  ASSERT_TRUE(a->at("ok").as_bool()) << a->dump();
  EXPECT_EQ(a->find("duplicate"), nullptr) << a->dump();

  Client second;
  ASSERT_TRUE(second.connect(socket, &error)) << error;
  const auto b = second.submit_retrying("alice", "same-name",
                                        workload_text(61), "", policy, &error);
  ASSERT_TRUE(b.has_value()) << error;
  ASSERT_TRUE(b->at("ok").as_bool()) << b->dump();
  EXPECT_EQ(b->find("duplicate"), nullptr) << b->dump();
  EXPECT_NE(a->at("job_id").as_int(), b->at("job_id").as_int());

  // An explicit token still dedupes across clients — entropy only guards
  // the auto-minted path.
  const auto c1 = first.submit_retrying("alice", "pinned", workload_text(62),
                                        "tok-x", policy, &error);
  ASSERT_TRUE(c1.has_value()) << error;
  ASSERT_TRUE(c1->at("ok").as_bool()) << c1->dump();
  const auto c2 = second.submit_retrying("alice", "pinned", workload_text(62),
                                         "tok-x", policy, &error);
  ASSERT_TRUE(c2.has_value()) << error;
  ASSERT_TRUE(c2->at("ok").as_bool()) << c2->dump();
  EXPECT_NE(c2->find("duplicate"), nullptr) << c2->dump();
  EXPECT_EQ(c1->at("job_id").as_int(), c2->at("job_id").as_int());

  wait_for_job(first,
               static_cast<std::uint64_t>(c1->at("job_id").as_int()));
  ASSERT_TRUE(first.drain(&error).has_value()) << error;
  first.close();
  second.close();
  EXPECT_EQ(session.join(), 0);
}

TEST(Service, StartFailsCleanlyOnBadConfig) {
  // Socket already bound by another server.
  const std::string socket = test_socket_path("busy");
  ServerConfig first;
  first.socket_path = socket;
  ServeSession session(std::move(first));
  std::string error;
  ASSERT_TRUE(session.begin(&error)) << error;

  // The probe-connect check refuses while the first daemon answers — and
  // must NOT unlink the live daemon's socket.
  ServerConfig second;
  second.socket_path = socket;
  Server duplicate(std::move(second));
  EXPECT_FALSE(duplicate.start(&error));
  EXPECT_NE(error.find("another daemon"), std::string::npos) << error;
  Client still_there;
  ASSERT_TRUE(still_there.connect(socket, &error)) << error;
  still_there.close();

  session.server().request_shutdown();
  EXPECT_EQ(session.join(), 0);

  // Unreadable model path.
  ServerConfig bad_model;
  bad_model.socket_path = test_socket_path("badmodel");
  bad_model.model_path = "/nonexistent/model.mm";
  Server no_model(std::move(bad_model));
  EXPECT_FALSE(no_model.start(&error));
  EXPECT_NE(error.find("model"), std::string::npos) << error;
}

TEST(Service, ClientDeadlineExpiresAsStructuredTimeout) {
  // A listener that accepts connections but never replies: the deadline
  // must surface as a structured {"ok": false, "code": "timeout"} reply —
  // not a hang, not a transport error — and close the connection so a late
  // reply can never answer a later request.
  const std::string socket = test_socket_path("deadline");
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket.c_str(), socket.size() + 1);
  ASSERT_EQ(::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 4), 0);

  Client client;
  std::string error;
  ASSERT_TRUE(client.connect(socket, &error)) << error;
  client.set_deadline_ms(40.0);
  const auto reply = client.stats(&error);
  ASSERT_TRUE(reply.has_value()) << error;
  EXPECT_FALSE(reply->at("ok").as_bool());
  EXPECT_EQ(reply->at("code").as_string(), error_code::kTimeout);
  EXPECT_FALSE(client.connected());

  // Reconnect with backoff succeeds against the same listener.
  RetryPolicy policy;
  policy.base_backoff_s = 1e-3;
  ASSERT_TRUE(client.connect_retry(socket, policy, &error)) << error;
  EXPECT_TRUE(client.connected());
  client.close();
  ::close(listener);
  ::unlink(socket.c_str());
}

}  // namespace
}  // namespace micco::service
