#include "sched/baselines.hpp"

#include <gtest/gtest.h>

#include <set>

#include "gpusim/cluster.hpp"

namespace micco {
namespace {

TensorDesc make_desc(TensorId id, std::int64_t extent = 16) {
  return TensorDesc{id, 2, extent, 1};
}

ContractionTask make_task(TensorId a, TensorId b, TensorId out,
                          std::int64_t extent = 16) {
  ContractionTask t;
  t.a = make_desc(a, extent);
  t.b = make_desc(b, extent);
  t.out = make_desc(out, extent);
  return t;
}

ClusterConfig cluster_of(int devices) {
  ClusterConfig c;
  c.num_devices = devices;
  c.device_capacity_bytes = 64u << 20;
  return c;
}

TEST(Groute, PicksEarliestAvailableDevice) {
  GrouteScheduler sched;
  ClusterSimulator sim(cluster_of(2));
  // Load device 0 heavily.
  sim.execute(make_task(0, 1, 2, 128), 0);
  EXPECT_EQ(sched.assign(make_task(3, 4, 5), sim), 1);
}

TEST(Groute, SpreadsInitialAssignments) {
  GrouteScheduler sched;
  ClusterSimulator sim(cluster_of(4));
  std::set<DeviceId> used;
  for (TensorId i = 0; i < 8; i += 2) {
    const ContractionTask t = make_task(i, i + 1, 100 + i);
    const DeviceId d = sched.assign(t, sim);
    sim.execute(t, d);
    used.insert(d);
  }
  EXPECT_EQ(used.size(), 4u);
}

TEST(Groute, IgnoresResidency) {
  // Tensors 0, 1 sit on device 0, but device 1 is idle -> Groute picks the
  // idle device even though it must re-fetch everything (its defining
  // blindness to the data dimension).
  GrouteScheduler sched;
  ClusterSimulator sim(cluster_of(2));
  sim.execute(make_task(0, 1, 2, 128), 0);
  EXPECT_EQ(sched.assign(make_task(0, 1, 3), sim), 1);
}

TEST(RoundRobin, CyclesThroughDevices) {
  RoundRobinScheduler sched;
  ClusterSimulator sim(cluster_of(3));
  EXPECT_EQ(sched.assign(make_task(0, 1, 10), sim), 0);
  EXPECT_EQ(sched.assign(make_task(2, 3, 11), sim), 1);
  EXPECT_EQ(sched.assign(make_task(4, 5, 12), sim), 2);
  EXPECT_EQ(sched.assign(make_task(6, 7, 13), sim), 0);
}

TEST(DataReuseOnly, FollowsDataWhereverItIs) {
  DataReuseOnlyScheduler sched;
  ClusterSimulator sim(cluster_of(2));
  sim.execute(make_task(0, 1, 2), 1);
  // Both operands on device 1 -> must go there, regardless of balance.
  EXPECT_EQ(sched.assign(make_task(0, 1, 3), sim), 1);
  // One operand on device 1 -> still follows it.
  EXPECT_EQ(sched.assign(make_task(0, 9, 4), sim), 1);
}

TEST(DataReuseOnly, FreshPairsStickToLastDevice) {
  DataReuseOnlyScheduler sched;
  ClusterSimulator sim(cluster_of(4));
  const DeviceId first = sched.assign(make_task(0, 1, 10), sim);
  sim.execute(make_task(0, 1, 10), first);
  // Fresh pair: stays on the same device (no balancing at all).
  EXPECT_EQ(sched.assign(make_task(2, 3, 11), sim), first);
}

TEST(DataReuseOnly, PrefersDeviceWithBothOperands) {
  DataReuseOnlyScheduler sched;
  ClusterSimulator sim(cluster_of(3));
  sim.execute(make_task(0, 5, 6), 1);  // tensor 0 on device 1
  sim.execute(make_task(0, 1, 7), 2);  // tensors 0 and 1 on device 2
  EXPECT_EQ(sched.assign(make_task(0, 1, 8), sim), 2);
}

TEST(LoadBalanceOnly, PerfectPairCounts) {
  LoadBalanceOnlyScheduler sched;
  ClusterSimulator sim(cluster_of(2));
  VectorWorkload v;
  for (TensorId i = 0; i < 8; i += 2) v.tasks.push_back(make_task(i, i + 1, 50 + i));
  sched.begin_vector(v, sim);
  std::vector<int> counts(2, 0);
  for (const ContractionTask& t : v.tasks) {
    const DeviceId d = sched.assign(t, sim);
    ++counts[static_cast<std::size_t>(d)];
    sim.execute(t, d);
  }
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 2);
}

TEST(LoadBalanceOnly, ResetsEachVector) {
  LoadBalanceOnlyScheduler sched;
  ClusterSimulator sim(cluster_of(2));
  VectorWorkload v;
  v.tasks = {make_task(0, 1, 10)};
  sched.begin_vector(v, sim);
  EXPECT_EQ(sched.assign(v.tasks[0], sim), 0);
  sched.begin_vector(v, sim);
  EXPECT_EQ(sched.assign(v.tasks[0], sim), 0);  // counts reset, device 0 again
}

TEST(Baselines, NamesAreStable) {
  EXPECT_EQ(GrouteScheduler{}.name(), "Groute");
  EXPECT_EQ(RoundRobinScheduler{}.name(), "RoundRobin");
  EXPECT_EQ(DataReuseOnlyScheduler{}.name(), "DataReuseOnly");
  EXPECT_EQ(LoadBalanceOnlyScheduler{}.name(), "LoadBalanceOnly");
}

}  // namespace
}  // namespace micco
