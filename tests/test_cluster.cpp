#include "gpusim/cluster.hpp"

#include <gtest/gtest.h>

namespace micco {
namespace {

TensorDesc make_desc(TensorId id, std::int64_t extent = 16,
                     std::int64_t batch = 1) {
  return TensorDesc{id, 2, extent, batch};
}

ContractionTask make_task(TensorId a, TensorId b, TensorId out,
                          std::int64_t extent = 16, std::int64_t batch = 1) {
  ContractionTask t;
  t.a = make_desc(a, extent, batch);
  t.b = make_desc(b, extent, batch);
  t.out = make_desc(out, extent, batch);
  return t;
}

ClusterConfig small_cluster(int devices = 2,
                            std::uint64_t capacity = 64ull << 20) {
  ClusterConfig c;
  c.num_devices = devices;
  c.device_capacity_bytes = capacity;
  return c;
}

TEST(Cluster, FreshClusterIsEmptyAndIdle) {
  ClusterSimulator sim(small_cluster());
  EXPECT_EQ(sim.num_devices(), 2);
  for (DeviceId d = 0; d < 2; ++d) {
    EXPECT_EQ(sim.memory_used(d), 0u);
    EXPECT_DOUBLE_EQ(sim.busy_time(d), 0.0);
  }
  EXPECT_FALSE(sim.resident_anywhere(0));
  EXPECT_TRUE(sim.devices_holding(0).empty());
}

TEST(Cluster, ExecutePlacesOperandsAndOutput) {
  ClusterSimulator sim(small_cluster());
  sim.execute(make_task(0, 1, 2), 0);
  EXPECT_TRUE(sim.resident_on(0, 0));
  EXPECT_TRUE(sim.resident_on(0, 1));
  EXPECT_TRUE(sim.resident_on(0, 2));
  EXPECT_FALSE(sim.resident_on(1, 0));
  EXPECT_GT(sim.busy_time(0), 0.0);
  EXPECT_DOUBLE_EQ(sim.busy_time(1), 0.0);

  const ExecutionMetrics& m = sim.metrics();
  EXPECT_EQ(m.h2d_transfers, 2u);      // two operands from the host
  EXPECT_EQ(m.allocations, 3u);        // a, b, out
  EXPECT_EQ(m.fetched_operands, 2u);
  EXPECT_EQ(m.reused_operands, 0u);
  EXPECT_EQ(m.total_flops, make_task(0, 1, 2).flops());
}

TEST(Cluster, ResidentOperandsAreReusedWithoutTransfer) {
  ClusterSimulator sim(small_cluster());
  sim.execute(make_task(0, 1, 2), 0);
  const std::uint64_t h2d_before = sim.metrics().h2d_transfers;
  sim.execute(make_task(0, 1, 3), 0);  // same operands, same device
  EXPECT_EQ(sim.metrics().h2d_transfers, h2d_before);
  EXPECT_EQ(sim.metrics().reused_operands, 2u);
}

TEST(Cluster, ReuseIsFasterThanRefetch) {
  ClusterSimulator reuse_sim(small_cluster());
  reuse_sim.execute(make_task(0, 1, 2, 64, 8), 0);
  reuse_sim.execute(make_task(0, 1, 3, 64, 8), 0);

  ClusterSimulator spread_sim(small_cluster());
  spread_sim.execute(make_task(0, 1, 2, 64, 8), 0);
  spread_sim.execute(make_task(0, 1, 3, 64, 8), 1);  // re-fetch on device 1

  EXPECT_LT(reuse_sim.busy_time(0),
            spread_sim.busy_time(0) + spread_sim.busy_time(1));
}

TEST(Cluster, P2PPreferredOverHostWhenReplicaExists) {
  ClusterConfig cfg = small_cluster();
  cfg.p2p_enabled = true;
  ClusterSimulator sim(cfg);
  sim.execute(make_task(0, 1, 2), 0);
  sim.execute(make_task(0, 3, 4), 1);  // tensor 0 comes from device 0 via P2P
  EXPECT_EQ(sim.metrics().p2p_transfers, 1u);
  EXPECT_EQ(sim.metrics().h2d_transfers, 3u);  // 1, and 3 from host (+2 first)
}

TEST(Cluster, P2PDisabledFallsBackToHost) {
  ClusterConfig cfg = small_cluster();
  cfg.p2p_enabled = false;
  ClusterSimulator sim(cfg);
  sim.execute(make_task(0, 1, 2), 0);
  sim.execute(make_task(0, 3, 4), 1);
  EXPECT_EQ(sim.metrics().p2p_transfers, 0u);
  EXPECT_EQ(sim.metrics().h2d_transfers, 4u);
}

TEST(Cluster, SameOperandTwiceFetchesOnce) {
  ClusterSimulator sim(small_cluster());
  sim.execute(make_task(7, 7, 8), 0);
  EXPECT_EQ(sim.metrics().h2d_transfers, 1u);
  EXPECT_EQ(sim.metrics().allocations, 2u);  // operand + output
}

TEST(Cluster, EvictionOnCapacityPressure) {
  // Capacity fits exactly 4 tensors of extent 16 (16*16*16B = 4 KiB each).
  const std::uint64_t tensor_bytes = make_desc(0).bytes();
  ClusterSimulator sim(small_cluster(1, 4 * tensor_bytes));
  sim.execute(make_task(0, 1, 2), 0);   // 3 resident
  sim.execute(make_task(3, 4, 5), 0);   // needs 3 more -> evictions
  EXPECT_GT(sim.metrics().evictions, 0u);
  EXPECT_LE(sim.memory_used(0), 4 * tensor_bytes);
}

TEST(Cluster, DirtyEvictionWritesBack) {
  const std::uint64_t tensor_bytes = make_desc(0).bytes();
  ClusterSimulator sim(small_cluster(1, 4 * tensor_bytes));
  sim.execute(make_task(0, 1, 2), 0);
  // Touch order makes output 2 LRU-newest; fill memory so older inputs go
  // first (clean), then keep pushing until the dirty output goes too.
  sim.execute(make_task(3, 4, 5), 0);
  sim.execute(make_task(6, 7, 8), 0);
  const ExecutionMetrics& m = sim.metrics();
  EXPECT_GT(m.evictions, 0u);
  EXPECT_GT(m.dirty_evictions, 0u);
  EXPECT_GT(m.writeback_bytes, 0u);
}

TEST(Cluster, EvictedTensorNoLongerResident) {
  const std::uint64_t tensor_bytes = make_desc(0).bytes();
  ClusterSimulator sim(small_cluster(1, 3 * tensor_bytes));
  sim.execute(make_task(0, 1, 2), 0);
  sim.execute(make_task(3, 4, 5), 0);  // evicts 0, 1, 2
  EXPECT_FALSE(sim.resident_anywhere(0));
  EXPECT_TRUE(sim.resident_on(0, 5));
}

TEST(Cluster, TaskLargerThanCapacityIsStructuredError) {
  // Reachable from user-supplied workloads, so it must be a recoverable
  // outcome rather than an abort; nothing is committed for the failed task.
  ClusterSimulator sim(small_cluster(1, 1024));
  const ExecuteResult r = sim.execute(make_task(0, 1, 2, 64, 16), 0);
  EXPECT_EQ(r.outcome, TaskOutcome::kCapacityExceeded);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(sim.device_alive(0));
  EXPECT_EQ(sim.metrics().total_flops, 0u);
}

TEST(Cluster, BarrierSynchronisesTimelines) {
  ClusterSimulator sim(small_cluster());
  sim.execute(make_task(0, 1, 2, 64, 8), 0);  // only device 0 works
  const double busy0 = sim.busy_time(0);
  sim.barrier();
  EXPECT_DOUBLE_EQ(sim.busy_time(0), busy0);
  EXPECT_DOUBLE_EQ(sim.busy_time(1), busy0);
  EXPECT_GT(sim.metrics().barrier_idle_s, 0.0);
  EXPECT_DOUBLE_EQ(sim.metrics().makespan_s, busy0);
}

TEST(Cluster, MakespanIsMaxDeviceTime) {
  ClusterSimulator sim(small_cluster());
  sim.execute(make_task(0, 1, 2, 64, 8), 0);
  sim.execute(make_task(3, 4, 5, 16, 1), 1);
  sim.barrier();
  EXPECT_DOUBLE_EQ(sim.metrics().makespan_s,
                   std::max(sim.busy_time(0), sim.busy_time(1)));
}

TEST(Cluster, GflopsConsistentWithTotals) {
  ClusterSimulator sim(small_cluster());
  sim.execute(make_task(0, 1, 2, 64, 4), 0);
  sim.barrier();
  const ExecutionMetrics& m = sim.metrics();
  EXPECT_NEAR(m.gflops(),
              static_cast<double>(m.total_flops) / m.makespan_s / 1e9,
              1e-9);
}

TEST(Cluster, DiscardReleasesEverywhere) {
  ClusterSimulator sim(small_cluster());
  sim.execute(make_task(0, 1, 2), 0);
  sim.execute(make_task(0, 3, 4), 1);  // replica of 0 on both devices
  ASSERT_EQ(sim.devices_holding(0).size(), 2u);
  sim.discard(0);
  EXPECT_FALSE(sim.resident_anywhere(0));
  EXPECT_TRUE(sim.devices_holding(0).empty());
}

TEST(Cluster, OverlapModeShortensElapsedTime) {
  ClusterConfig serial = small_cluster(1);
  ClusterConfig overlap = serial;
  overlap.overlap_transfers = true;

  ClusterSimulator a(serial), b(overlap);
  for (TensorId i = 0; i < 12; i += 3) {
    const ContractionTask t = make_task(i, i + 1, i + 2, 128, 8);
    a.execute(t, 0);
    b.execute(t, 0);
  }
  EXPECT_LT(b.busy_time(0), a.busy_time(0));
}

TEST(Cluster, UtilizationReflectsWorkShare) {
  ClusterSimulator sim(small_cluster());
  sim.execute(make_task(0, 1, 2, 64, 8), 0);
  sim.barrier();
  const std::vector<double> util = sim.utilization();
  ASSERT_EQ(util.size(), 2u);
  EXPECT_GT(util[0], 0.9);
  EXPECT_DOUBLE_EQ(util[1], 0.0);
}

TEST(Cluster, HostResidencySemantics) {
  ClusterSimulator sim(small_cluster());
  // Originals are host-staged by definition, even before first use.
  EXPECT_TRUE(sim.host_resident(0));
  sim.execute(make_task(0, 1, 2), 0);
  // Produced intermediates have no host copy until eviction writes back.
  EXPECT_FALSE(sim.host_resident(2));
  EXPECT_TRUE(sim.host_resident(0));
}

TEST(Cluster, EvictionCreatesHostCopyOfIntermediate) {
  const std::uint64_t tensor_bytes = make_desc(0).bytes();
  ClusterConfig cfg = small_cluster(1, 3 * tensor_bytes);
  ClusterSimulator sim(cfg);
  sim.execute(make_task(0, 1, 2), 0);
  sim.execute(make_task(3, 4, 5), 0);  // evicts 0, 1, 2 (incl. output 2)
  EXPECT_FALSE(sim.resident_anywhere(2));
  EXPECT_TRUE(sim.host_resident(2));  // written back on eviction
  // The evicted intermediate is refetchable (from the host copy).
  sim.execute(make_task(2, 5, 6), 0);
  EXPECT_TRUE(sim.resident_on(0, 2));
}

TEST(Cluster, FetchingDiscardedIntermediateAborts) {
  ClusterSimulator sim(small_cluster());
  sim.execute(make_task(0, 1, 2), 0);
  sim.discard(2);  // intermediate gone from devices, never written back
  EXPECT_DEATH(sim.execute(make_task(2, 3, 4), 1), "lost intermediate");
}

TEST(Cluster, InvalidDeviceAborts) {
  ClusterSimulator sim(small_cluster());
  EXPECT_DEATH(sim.execute(make_task(0, 1, 2), 5), "num_devices");
  EXPECT_DEATH((void)sim.memory_used(-1), "dev >= 0");
}

}  // namespace
}  // namespace micco
