// Tests for the runtime lock-rank discipline (common/mutex.hpp,
// DESIGN.md §10.4): ranks must strictly decrease along every acquisition
// chain; an inversion aborts with both lock names. The checks are compiled
// in when !NDEBUG or -DMICCO_MUTEX_RANKS=1 (ci.sh's Debug build); in a
// plain Release build the enforcement-path tests skip rather than assert
// behaviour that was compiled out.
#include "common/lock_ranks.hpp"
#include "common/mutex.hpp"

#include <gtest/gtest.h>

namespace micco {
namespace {

TEST(MutexRank, DescendingAcquisitionIsQuiet) {
  Mutex outer("test.outer", 40);
  Mutex inner("test.inner", 4);
  const MutexLock hold_outer(outer);
  const MutexLock hold_inner(inner);
}

TEST(MutexRank, UnrankedMutexesAreExempt) {
  Mutex ranked("test.ranked", 5);
  Mutex plain;
  // An unranked mutex may be taken under a ranked one (and vice versa)
  // without tripping the discipline: it simply does not participate.
  const MutexLock hold_ranked(ranked);
  const MutexLock hold_plain(plain);
}

TEST(MutexRank, ReleaseRestoresHeadroom) {
  Mutex low("test.low", 20);
  Mutex high("test.high", 30);
  {
    const MutexLock hold_low(low);
  }
  // low is released, so acquiring the higher rank afterwards is ordered.
  const MutexLock hold_high(high);
}

TEST(MutexRank, GlobalRankTableIsStrictlyLayered) {
  // The table itself must keep its documented ordering: config above pool
  // above loop; server above jobs above journal; sinks above metrics above
  // histogram; and the service layer entirely above the obs leaves.
  EXPECT_GT(kLockRankParallelConfig, kLockRankPool);
  EXPECT_GT(kLockRankPool, kLockRankLoop);
  EXPECT_GT(kLockRankServerState, kLockRankJobManager);
  EXPECT_GT(kLockRankJobManager, kLockRankJournal);
  EXPECT_GT(kLockRankEventSink, kLockRankSpanSink);
  EXPECT_GT(kLockRankSpanSink, kLockRankMetrics);
  EXPECT_GT(kLockRankMetrics, kLockRankHistogram);
  EXPECT_GT(kLockRankJournal, kLockRankEventSink);
}

#if MICCO_MUTEX_RANK_CHECKS

TEST(MutexRankDeathTest, InvertedAcquisitionAbortsWithBothNames) {
  EXPECT_DEATH(
      {
        Mutex low("test.low", 5);
        Mutex high("test.high", 50);
        const MutexLock hold_low(low);
        const MutexLock hold_high(high);  // 50 while holding 5: inversion
      },
      "lock-rank inversion.*test\\.high.*test\\.low");
}

TEST(MutexRankDeathTest, EqualRankAcquisitionAborts) {
  // Strictly decreasing: two locks sharing a rank must never nest, in
  // either order — that is exactly the symmetric pattern that deadlocks.
  EXPECT_DEATH(
      {
        Mutex first("test.first", 7);
        Mutex second("test.second", 7);
        const MutexLock hold_first(first);
        const MutexLock hold_second(second);
      },
      "lock-rank inversion");
}

TEST(MutexRankDeathTest, TryLockSuccessCountsTowardTheHeldSet) {
  EXPECT_DEATH(
      {
        Mutex low("test.low", 5);
        Mutex high("test.high", 50);
        if (low.try_lock()) {
          const MutexLock hold_high(high);  // inversion over the try_lock
        }
      },
      "lock-rank inversion");
}

#else

TEST(MutexRankDeathTest, ChecksCompiledOut) {
  GTEST_SKIP() << "lock-rank checks compiled out (NDEBUG build without "
                  "MICCO_MUTEX_RANKS=1); ci.sh's Debug build runs the "
                  "death tests";
}

#endif  // MICCO_MUTEX_RANK_CHECKS

}  // namespace
}  // namespace micco
