// Fault-tolerant scheduling end to end: device loss mid-stream, transient
// transfer faults with retry, graceful degradation, structured errors, and
// the guarantee that an attached-but-empty fault plan changes nothing.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"
#include "gpusim/cluster.hpp"
#include "obs/events.hpp"
#include "obs/telemetry.hpp"
#include "sched/micco_scheduler.hpp"
#include "workload/synthetic.hpp"

namespace micco {
namespace {

SyntheticConfig small_workload() {
  SyntheticConfig c;
  c.num_vectors = 6;
  c.vector_size = 24;
  c.tensor_extent = 64;
  c.batch = 2;
  c.repeated_rate = 0.5;
  c.seed = 7;
  return c;
}

ClusterConfig cluster_of(int devices,
                         std::uint64_t capacity = 256ull << 20) {
  ClusterConfig c;
  c.num_devices = devices;
  c.device_capacity_bytes = capacity;
  return c;
}

RunResult run_with(const WorkloadStream& stream, Scheduler& scheduler,
                   const ClusterConfig& cluster, const FaultPlan* plan,
                   RetryPolicy retry = {}, obs::Telemetry* telemetry = nullptr) {
  RunOptions options;
  options.faults = plan;
  options.retry = retry;
  options.telemetry = telemetry;
  return run_stream(stream, scheduler, cluster, options);
}

TensorDesc make_desc(TensorId id, std::int64_t extent = 16,
                     std::int64_t batch = 1) {
  return TensorDesc{id, 2, extent, batch};
}

ContractionTask make_task(TensorId a, TensorId b, TensorId out,
                          std::int64_t extent = 16, std::int64_t batch = 1) {
  return ContractionTask{make_desc(a, extent, batch),
                         make_desc(b, extent, batch),
                         make_desc(out, extent, batch)};
}

// ----------------------------------------------------------- device failure

TEST(FaultRecovery, MidStreamDeviceLossRecoversAndCompletes) {
  const WorkloadStream stream = generate_synthetic(small_workload());

  MiccoScheduler clean_sched;
  const RunResult clean = run_with(stream, clean_sched, cluster_of(4), nullptr);
  ASSERT_TRUE(clean.completed);
  ASSERT_GT(clean.metrics.makespan_s, 0.0);

  FaultPlan plan;
  plan.device_failures.push_back(
      DeviceFailure{1, clean.metrics.makespan_s / 2.0});

  MiccoScheduler sched;
  const RunResult result = run_with(stream, sched, cluster_of(4), &plan);
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.error.empty()) << result.error;
  EXPECT_TRUE(result.recovered);
  EXPECT_EQ(result.devices_lost, 1);
  EXPECT_EQ(result.metrics.devices_lost, 1u);
  // Every pair still ran; re-executions only add flops on top.
  EXPECT_GE(result.metrics.total_flops, stream.total_flops());
  EXPECT_GE(result.tasks_reexecuted, 1u);
}

TEST(FaultRecovery, DegradedMakespanBoundedByThreeGpuRun) {
  const WorkloadStream stream = generate_synthetic(small_workload());

  MiccoScheduler s4;
  const RunResult clean4 = run_with(stream, s4, cluster_of(4), nullptr);
  MiccoScheduler s3;
  const RunResult clean3 = run_with(stream, s3, cluster_of(3), nullptr);
  ASSERT_TRUE(clean4.completed);
  ASSERT_TRUE(clean3.completed);

  FaultPlan plan;
  plan.device_failures.push_back(
      DeviceFailure{1, clean4.metrics.makespan_s / 2.0});
  MiccoScheduler sched;
  const RunResult faulted = run_with(stream, sched, cluster_of(4), &plan);
  ASSERT_TRUE(faulted.completed);
  EXPECT_TRUE(faulted.recovered);

  // Losing 1 of 4 devices halfway through must not be meaningfully worse
  // than never having had the device at all. The slack covers recovery's
  // intrinsic cost: the casualty's outputs have no host copies at this
  // capacity, so its entire first-half history is recomputed (work-wise
  // that lands exactly on the 3-GPU total) plus re-fetches and the extra
  // barrier idle the mid-vector rebalance causes.
  EXPECT_GE(faulted.metrics.makespan_s, clean4.metrics.makespan_s);
  EXPECT_LE(faulted.metrics.makespan_s, clean3.metrics.makespan_s * 1.15);
}

TEST(FaultRecovery, DeviceFailureEmitsFaultEvents) {
  const WorkloadStream stream = generate_synthetic(small_workload());
  FaultPlan plan;
  plan.device_failures.push_back(DeviceFailure{0, 0.0});

  obs::MemoryEventSink sink;
  obs::Telemetry telemetry;
  telemetry.sink = &sink;
  MiccoScheduler sched;
  const RunResult result =
      run_with(stream, sched, cluster_of(4), &plan, {}, &telemetry);
  ASSERT_TRUE(result.completed);

  int failures = 0;
  int recoveries = 0;
  for (const obs::ClusterEvent& e : sink.cluster_events()) {
    if (e.kind == obs::ClusterEventKind::kDeviceFailure) {
      ++failures;
      EXPECT_EQ(e.device, 0);
    }
    if (e.kind == obs::ClusterEventKind::kRecovery) ++recoveries;
  }
  EXPECT_EQ(failures, 1);
  EXPECT_GE(recoveries, 1);
}

TEST(FaultRecovery, AllDevicesFailedIsStructuredError) {
  const WorkloadStream stream = generate_synthetic(small_workload());
  FaultPlan plan;
  plan.device_failures.push_back(DeviceFailure{0, 0.0});
  plan.device_failures.push_back(DeviceFailure{1, 0.0});

  MiccoScheduler sched;
  const RunResult result = run_with(stream, sched, cluster_of(2), &plan);
  EXPECT_FALSE(result.completed);
  EXPECT_FALSE(result.recovered);
  EXPECT_NE(result.error.find("all devices failed"), std::string::npos)
      << result.error;
  EXPECT_EQ(result.devices_lost, 2);
}

// ----------------------------------------------------------- transfer faults

TEST(FaultRecovery, TransientTransferFaultsRetryAndComplete) {
  const WorkloadStream stream = generate_synthetic(small_workload());

  MiccoScheduler clean_sched;
  const RunResult clean = run_with(stream, clean_sched, cluster_of(4), nullptr);

  FaultPlan plan;
  plan.transfer.probability = 0.05;
  plan.transfer.seed = 2026;

  MiccoScheduler sched;
  const RunResult result = run_with(stream, sched, cluster_of(4), &plan);
  ASSERT_TRUE(result.completed) << result.error;
  EXPECT_GT(result.metrics.transfer_faults, 0u);
  EXPECT_GT(result.metrics.retry_backoff_s, 0.0);
  EXPECT_EQ(result.devices_lost, 0);
  // Wasted attempts + backoff only ever stretch the simulated clock.
  EXPECT_GE(result.metrics.makespan_s, clean.metrics.makespan_s);
  EXPECT_EQ(result.metrics.total_flops, stream.total_flops());
}

TEST(FaultRecovery, RetryExhaustionEscalatesToDeviceFailure) {
  // With near-certain per-attempt failure and only two tries, the first
  // transfer on each device exhausts its retries and the link is declared
  // dead; once every device is gone the run ends with a structured error
  // instead of an abort.
  const WorkloadStream stream = generate_synthetic(small_workload());
  FaultPlan plan;
  plan.transfer.probability = 0.999;
  RetryPolicy retry;
  retry.max_attempts = 2;

  MiccoScheduler sched;
  const RunResult result = run_with(stream, sched, cluster_of(2), &plan, retry);
  EXPECT_GT(result.metrics.transfer_faults, 0u);
  EXPECT_GT(result.devices_lost, 0);
  if (!result.completed) {
    EXPECT_NE(result.error.find("all devices failed"), std::string::npos)
        << result.error;
  }
}

// ------------------------------------------------- capacity loss & slowdown

TEST(FaultRecovery, CapacityLossAppliedAndRunCompletes) {
  const WorkloadStream stream = generate_synthetic(small_workload());
  FaultPlan plan;
  plan.capacity_losses.push_back(CapacityLoss{0, 128ull << 20, 0.0});

  MiccoScheduler sched;
  const RunResult result =
      run_with(stream, sched, cluster_of(2, 256ull << 20), &plan);
  ASSERT_TRUE(result.completed) << result.error;
  EXPECT_EQ(result.metrics.capacity_faults, 1u);
  EXPECT_EQ(result.devices_lost, 0);
}

TEST(FaultRecovery, SlowdownStretchesMakespan) {
  const WorkloadStream stream = generate_synthetic(small_workload());

  MiccoScheduler clean_sched;
  const RunResult clean = run_with(stream, clean_sched, cluster_of(2), nullptr);

  FaultPlan plan;
  plan.slowdowns.push_back(DeviceSlowdown{0, 4.0, 0.0});
  MiccoScheduler sched;
  const RunResult slow = run_with(stream, sched, cluster_of(2), &plan);
  ASSERT_TRUE(slow.completed);
  EXPECT_GT(slow.metrics.makespan_s, clean.metrics.makespan_s);
}

// -------------------------------------------------------- structured errors

TEST(FaultRecovery, OversizedTaskIsStructuredErrorNotAbort) {
  WorkloadStream stream;
  VectorWorkload vec;
  vec.tasks.push_back(make_task(1, 2, 3, 64, 16));  // ~3 MiB working set
  stream.vectors.push_back(vec);

  MiccoScheduler sched;
  const RunResult result =
      run_with(stream, sched, cluster_of(1, 1024), nullptr);
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.error.find("exceeds device capacity"), std::string::npos)
      << result.error;
}

TEST(FaultRecovery, InvalidPlanForClusterIsStructuredError) {
  const WorkloadStream stream = generate_synthetic(small_workload());
  FaultPlan plan;
  plan.device_failures.push_back(DeviceFailure{7, 0.0});  // only 2 devices

  MiccoScheduler sched;
  const RunResult result = run_with(stream, sched, cluster_of(2), &plan);
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.error.find("invalid fault configuration"),
            std::string::npos)
      << result.error;
  EXPECT_EQ(result.metrics.total_flops, 0u);
}

// --------------------------------------------------- scheduler-side property

std::vector<SchedulerKind> all_scheduler_kinds() {
  return {SchedulerKind::kGroute,          SchedulerKind::kRoundRobin,
          SchedulerKind::kDataReuseOnly,   SchedulerKind::kLoadBalanceOnly,
          SchedulerKind::kDmda,            SchedulerKind::kMiccoNaive,
          SchedulerKind::kMiccoOptimal};
}

TEST(FaultRecovery, NoSchedulerAssignsPairsToFailedDevice) {
  // run_stream fails the run with a "scheduler assigned a pair to failed
  // device" error if any scheduler violates the liveness contract; a clean
  // recovery from every scheduler is the property holding end to end.
  const WorkloadStream stream = generate_synthetic(small_workload());
  FaultPlan plan;
  plan.device_failures.push_back(DeviceFailure{1, 0.0});

  for (const SchedulerKind kind : all_scheduler_kinds()) {
    const std::unique_ptr<Scheduler> scheduler = make_scheduler(kind);
    const RunResult result =
        run_with(stream, *scheduler, cluster_of(4), &plan);
    EXPECT_TRUE(result.completed) << to_string(kind) << ": " << result.error;
    EXPECT_TRUE(result.error.empty()) << to_string(kind) << ": "
                                      << result.error;
    EXPECT_EQ(result.devices_lost, 1) << to_string(kind);
    EXPECT_TRUE(result.recovered) << to_string(kind);
  }
}

TEST(FaultRecovery, AssignNeverReturnsDeadDeviceDirectly) {
  ClusterSimulator sim(cluster_of(4));
  sim.fail_device(2, 0.0);
  ASSERT_FALSE(sim.device_alive(2));
  ASSERT_EQ(sim.num_alive_devices(), 3);

  VectorWorkload vec;
  for (TensorId i = 0; i < 16; ++i) {
    vec.tasks.push_back(make_task(3 * i, 3 * i + 1, 1000 + i));
  }

  for (const SchedulerKind kind : all_scheduler_kinds()) {
    const std::unique_ptr<Scheduler> scheduler = make_scheduler(kind);
    scheduler->begin_vector(vec, sim);
    for (const ContractionTask& task : vec.tasks) {
      const DeviceId dev = scheduler->assign(task, sim);
      EXPECT_NE(dev, 2) << to_string(kind);
      EXPECT_TRUE(sim.device_alive(dev)) << to_string(kind);
    }
  }
}

TEST(FaultRecovery, MiccoRecomputesBalanceNumOverSurvivors) {
  ClusterSimulator sim(cluster_of(4));
  VectorWorkload vec;
  for (TensorId i = 0; i < 12; ++i) {
    vec.tasks.push_back(make_task(2 * i, 2 * i + 1, 1000 + i));
  }
  ASSERT_EQ(vec.unique_inputs().size(), 24u);

  MiccoScheduler sched;
  sched.begin_vector(vec, sim);
  EXPECT_EQ(sched.balance_num(), 6);  // 24 distinct inputs / 4 devices

  sim.fail_device(1, 0.0);
  sched.on_device_failure(1, sim);
  EXPECT_EQ(sched.balance_num(), 8);  // 24 / 3 survivors
}

// ---------------------------------------------------------------- determinism

std::string decisions_dump(const obs::MemoryEventSink& sink) {
  std::string out;
  for (const obs::DecisionEvent& e : sink.decisions()) {
    out += e.to_json().dump();
    out += '\n';
  }
  return out;
}

std::string cluster_events_dump(const obs::MemoryEventSink& sink) {
  std::string out;
  for (const obs::ClusterEvent& e : sink.cluster_events()) {
    out += e.to_json().dump();
    out += '\n';
  }
  return out;
}

TEST(FaultRecovery, EmptyPlanIsByteIdenticalToNoPlan) {
  const WorkloadStream stream = generate_synthetic(small_workload());
  const FaultPlan empty_plan;
  ASSERT_TRUE(empty_plan.empty());

  obs::MemoryEventSink sink_a;
  obs::Telemetry tel_a;
  tel_a.sink = &sink_a;
  MiccoScheduler sched_a;
  RunResult a = run_with(stream, sched_a, cluster_of(4), nullptr, {}, &tel_a);

  obs::MemoryEventSink sink_b;
  obs::Telemetry tel_b;
  tel_b.sink = &sink_b;
  MiccoScheduler sched_b;
  RunResult b =
      run_with(stream, sched_b, cluster_of(4), &empty_plan, {}, &tel_b);

  EXPECT_EQ(to_json(a.metrics).dump(), to_json(b.metrics).dump());
  EXPECT_EQ(decisions_dump(sink_a), decisions_dump(sink_b));
  EXPECT_EQ(cluster_events_dump(sink_a), cluster_events_dump(sink_b));

  // The full run report is byte-identical too, once the one wall-clock
  // field (scheduler overhead) is pinned; everything else is simulated.
  a.scheduling_overhead_ms = 0.0;
  b.scheduling_overhead_ms = 0.0;
  EXPECT_EQ(make_run_report(a, tel_a).dump(), make_run_report(b, tel_b).dump());
}

TEST(FaultRecovery, SameSeedAndPlanAreByteIdentical) {
  const WorkloadStream stream = generate_synthetic(small_workload());
  FaultPlan plan;
  plan.device_failures.push_back(DeviceFailure{2, 0.001});
  plan.transfer.probability = 0.05;
  plan.transfer.seed = 99;

  obs::MemoryEventSink sink_a;
  obs::Telemetry tel_a;
  tel_a.sink = &sink_a;
  MiccoScheduler sched_a;
  RunResult a = run_with(stream, sched_a, cluster_of(4), &plan, {}, &tel_a);

  obs::MemoryEventSink sink_b;
  obs::Telemetry tel_b;
  tel_b.sink = &sink_b;
  MiccoScheduler sched_b;
  RunResult b = run_with(stream, sched_b, cluster_of(4), &plan, {}, &tel_b);

  ASSERT_TRUE(a.completed) << a.error;
  EXPECT_EQ(a.metrics.devices_lost, 1u);
  EXPECT_DOUBLE_EQ(a.metrics.makespan_s, b.metrics.makespan_s);
  EXPECT_EQ(to_json(a.metrics).dump(), to_json(b.metrics).dump());
  EXPECT_EQ(decisions_dump(sink_a), decisions_dump(sink_b));
  EXPECT_EQ(cluster_events_dump(sink_a), cluster_events_dump(sink_b));

  a.scheduling_overhead_ms = 0.0;
  b.scheduling_overhead_ms = 0.0;
  EXPECT_EQ(make_run_report(a, tel_a).dump(), make_run_report(b, tel_b).dump());
}

// ------------------------------------------------- capacity sizing edge cases

TEST(CapacitySizing, DegenerateInputsReturnFloor) {
  const WorkloadStream stream = generate_synthetic(small_workload());
  const WorkloadStream empty;
  const std::uint64_t floor = 4096;
  EXPECT_EQ(capacity_for_oversubscription(stream, 0, 2.0, floor), floor);
  EXPECT_EQ(capacity_for_oversubscription(stream, -3, 2.0, floor), floor);
  EXPECT_EQ(capacity_for_oversubscription(empty, 4, 2.0, floor), floor);
  EXPECT_EQ(capacity_for_oversubscription(stream, 4, 0.0, floor), floor);
  EXPECT_EQ(capacity_for_oversubscription(stream, 4, -1.0, floor), floor);
}

TEST(CapacitySizing, RatesBelowOneInflateCapacity) {
  const WorkloadStream stream = generate_synthetic(small_workload());
  const std::uint64_t at_100 =
      capacity_for_oversubscription(stream, 4, 1.0, 1);
  const std::uint64_t at_050 =
      capacity_for_oversubscription(stream, 4, 0.5, 1);
  EXPECT_NEAR(static_cast<double>(at_050) / static_cast<double>(at_100), 2.0,
              0.01);
  // A floor above the inflated share still wins.
  const std::uint64_t huge_floor = 1ull << 40;
  EXPECT_EQ(capacity_for_oversubscription(stream, 4, 0.5, huge_floor),
            huge_floor);
}

}  // namespace
}  // namespace micco
