#include "redstar/correlator.hpp"

#include <gtest/gtest.h>

#include "core/verify.hpp"

namespace micco::redstar {
namespace {

CorrelatorSpec tiny_spec() {
  CorrelatorSpec spec = make_a1_rhopi();
  spec.time_slices = 3;
  spec.extent = 8;
  spec.batch = 1;
  return spec;
}

TEST(Correlator, BuildsNonEmptyStagedWorkload) {
  const CorrelatorWorkload w = build_workload(tiny_spec());
  EXPECT_GT(w.stats.diagrams, 0u);
  EXPECT_GT(w.stats.contractions, 0u);
  EXPECT_GE(w.stats.stages, 1u);
  EXPECT_EQ(w.stream.vectors.size(), w.stats.stages);
  EXPECT_GT(w.stream.total_flops(), 0u);
}

TEST(Correlator, StreamIsStructurallyValid) {
  const CorrelatorWorkload w = build_workload(tiny_spec());
  EXPECT_EQ(validate_stream_structure(w.stream), "");
}

TEST(Correlator, DeduplicationAcrossTimeSlicesAndDiagrams) {
  const CorrelatorWorkload w = build_workload(tiny_spec());
  // The shared source nodes force at least some shared sub-reductions.
  EXPECT_GT(w.stats.deduplicated, 0u);
}

TEST(Correlator, FootprintMatchesStreamAccounting) {
  const CorrelatorWorkload w = build_workload(tiny_spec());
  EXPECT_EQ(w.stats.total_bytes, w.stream.total_distinct_bytes());
  EXPECT_GT(w.stats.total_bytes, 0u);
}

TEST(Correlator, MoreTimeSlicesMoreWork) {
  CorrelatorSpec small = tiny_spec();
  CorrelatorSpec large = tiny_spec();
  large.time_slices = 6;
  EXPECT_LT(build_workload(small).stats.contractions,
            build_workload(large).stats.contractions);
}

TEST(Correlator, DeterministicBuild) {
  const CorrelatorWorkload a = build_workload(tiny_spec());
  const CorrelatorWorkload b = build_workload(tiny_spec());
  EXPECT_EQ(a.stats.contractions, b.stats.contractions);
  ASSERT_EQ(a.stream.vectors.size(), b.stream.vectors.size());
  for (std::size_t v = 0; v < a.stream.vectors.size(); ++v) {
    ASSERT_EQ(a.stream.vectors[v].tasks.size(),
              b.stream.vectors[v].tasks.size());
    for (std::size_t t = 0; t < a.stream.vectors[v].tasks.size(); ++t) {
      EXPECT_EQ(a.stream.vectors[v].tasks[t].out.id,
                b.stream.vectors[v].tasks[t].out.id);
    }
  }
}

TEST(RealFunctions, SpecsMatchTableVITensorSizes) {
  EXPECT_EQ(make_a1_rhopi().extent, 128);
  EXPECT_EQ(make_f0d2().extent, 256);
  EXPECT_EQ(make_f0d4().extent, 256);
  EXPECT_EQ(make_a1_rhopi().time_slices, 16);
}

TEST(RealFunctions, LookupByName) {
  EXPECT_EQ(real_function("a1_rhopi").name, "a1_rhopi");
  EXPECT_EQ(real_function("f0d2").name, "f0d2");
  EXPECT_EQ(real_function("f0d4").name, "f0d4");
  EXPECT_DEATH((void)real_function("nope"), "unknown");
}

TEST(RealFunctions, F0d4HasMoreDiagramsThanF0d2) {
  CorrelatorSpec d2 = make_f0d2();
  CorrelatorSpec d4 = make_f0d4();
  // Compare structure only: shrink tensors so the build is instant.
  d2.extent = d4.extent = 8;
  d2.batch = d4.batch = 1;
  d2.time_slices = d4.time_slices = 2;
  EXPECT_LT(build_workload(d2).stats.diagrams,
            build_workload(d4).stats.diagrams);
}

TEST(RealFunctions, A1RhopiMixesSingleAndTwoParticle) {
  const CorrelatorSpec spec = make_a1_rhopi();
  bool has_single = false;
  bool has_pair = false;
  for (const Construction& c : spec.sink.constructions) {
    if (c.hadrons.size() == 1) has_single = true;
    if (c.hadrons.size() == 2) has_pair = true;
  }
  EXPECT_TRUE(has_single);
  EXPECT_TRUE(has_pair);
}

TEST(RealFunctions, TinyWorkloadExecutesNumerically) {
  // End-to-end: the staged plan of a real (shrunken) correlator runs through
  // the executing kernels without dependency violations.
  const CorrelatorWorkload w = build_workload(tiny_spec());
  const NumericResult r = execute_numerically(w.stream, 1ull << 28);
  EXPECT_EQ(r.tasks_executed, w.stats.contractions);
  EXPECT_GT(r.digest, 0.0);
}

}  // namespace
}  // namespace micco::redstar
