#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace micco::stats {
namespace {

TEST(Stats, MeanBasic) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, MeanEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, VarianceAndStddev) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(Stats, VarianceOfConstantIsZero) {
  const std::vector<double> xs{3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(variance(xs), 0.0);
}

TEST(Stats, GeomeanBasic) {
  const std::vector<double> xs{1.0, 4.0, 16.0};
  EXPECT_NEAR(geomean(xs), 4.0, 1e-12);
}

TEST(Stats, GeomeanSingle) {
  const std::vector<double> xs{2.25};
  EXPECT_NEAR(geomean(xs), 2.25, 1e-12);
}

TEST(Stats, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs{3.0, -1.0, 7.5, 2.0};
  EXPECT_DOUBLE_EQ(min(xs), -1.0);
  EXPECT_DOUBLE_EQ(max(xs), 7.5);
}

TEST(Stats, KahanSumHandlesSmallAddends) {
  std::vector<double> xs{1.0e16};
  for (int i = 0; i < 10; ++i) xs.push_back(1.0);
  EXPECT_DOUBLE_EQ(kahan_sum(xs), 1.0e16 + 10.0);
}

TEST(Stats, RanksSimple) {
  const std::vector<double> xs{10.0, 30.0, 20.0};
  const std::vector<double> r = ranks(xs);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 3.0);
  EXPECT_DOUBLE_EQ(r[2], 2.0);
}

TEST(Stats, RanksAverageTies) {
  const std::vector<double> xs{5.0, 5.0, 1.0, 9.0};
  const std::vector<double> r = ranks(xs);
  EXPECT_DOUBLE_EQ(r[0], 2.5);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 1.0);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Stats, PearsonPerfectPositive) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> ys{2.0, 4.0, 6.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(Stats, PearsonPerfectNegative) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> ys{9.0, 6.0, 3.0};
  EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(Stats, PearsonZeroVarianceGivesZero) {
  const std::vector<double> xs{1.0, 1.0, 1.0};
  const std::vector<double> ys{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(Stats, SpearmanMonotoneNonlinearIsOne) {
  // Spearman sees through monotone nonlinearity (why the paper uses it).
  std::vector<double> xs, ys;
  for (int i = 1; i <= 20; ++i) {
    xs.push_back(i);
    ys.push_back(std::exp(0.3 * i));
  }
  EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
}

TEST(Stats, SpearmanAntitone) {
  std::vector<double> xs, ys;
  for (int i = 1; i <= 10; ++i) {
    xs.push_back(i);
    ys.push_back(1.0 / i);
  }
  EXPECT_NEAR(spearman(xs, ys), -1.0, 1e-12);
}

TEST(Stats, SummaryFields) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
}

TEST(Stats, FormatPrecision) {
  EXPECT_EQ(format(3.14159, 2), "3.14");
  EXPECT_EQ(format(2.0, 0), "2");
}

}  // namespace
}  // namespace micco::stats
