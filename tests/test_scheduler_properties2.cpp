// Second property suite: cross-scheduler invariants, extension-feature
// interactions and format round-trip properties swept over workload space.
#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment.hpp"
#include "core/verify.hpp"
#include "sched/oracle.hpp"
#include "workload/serialize.hpp"
#include "workload/synthetic.hpp"

namespace micco {
namespace {

struct Case2 {
  std::int64_t vector_size;
  double repeated_rate;
  DataDistribution distribution;
  std::uint64_t seed;
};

std::string case2_name(const ::testing::TestParamInfo<Case2>& info) {
  std::string name = "v";
  name += std::to_string(info.param.vector_size);
  name += "_r";
  name += std::to_string(static_cast<int>(info.param.repeated_rate * 100));
  name += "_";
  name += to_string(info.param.distribution);
  name += "_s";
  name += std::to_string(info.param.seed);
  return name;
}

class SchedulerProperties2 : public ::testing::TestWithParam<Case2> {
 protected:
  WorkloadStream make_stream() const {
    const Case2& p = GetParam();
    SyntheticConfig cfg;
    cfg.num_vectors = 5;
    cfg.vector_size = p.vector_size;
    cfg.tensor_extent = 48;
    cfg.batch = 2;
    cfg.repeated_rate = p.repeated_rate;
    cfg.distribution = p.distribution;
    cfg.seed = p.seed;
    return generate_synthetic(cfg);
  }

  static ClusterConfig cluster(bool p2p = false, bool overlap = false) {
    ClusterConfig c;
    c.num_devices = 4;
    c.device_capacity_bytes = 256u << 20;
    c.p2p_enabled = p2p;
    c.overlap_transfers = overlap;
    return c;
  }
};

TEST_P(SchedulerProperties2, SerializationRoundTripPreservesMetrics) {
  // Scheduling a saved+loaded stream must produce identical metrics: the
  // file format carries everything the scheduler and simulator consume.
  const WorkloadStream stream = make_stream();
  std::stringstream buffer;
  save_stream(stream, buffer);
  const auto loaded = load_stream(buffer);
  ASSERT_TRUE(loaded.has_value());

  MiccoScheduler s1, s2;
  const RunResult a = run_stream(stream, s1, cluster());
  const RunResult b = run_stream(*loaded, s2, cluster());
  EXPECT_DOUBLE_EQ(a.metrics.makespan_s, b.metrics.makespan_s);
  EXPECT_EQ(a.metrics.h2d_bytes, b.metrics.h2d_bytes);
  EXPECT_EQ(a.metrics.evictions, b.metrics.evictions);
}

TEST_P(SchedulerProperties2, P2PNeverSlowsTimingIndependentSchedulers) {
  // Enabling peer fetches replaces host transfers with strictly faster
  // ones. For schedulers whose decisions do not feed back on device timing
  // (RoundRobin, LoadBalanceOnly), the assignment is identical with and
  // without P2P, so the makespan cannot regress. (Timing-fed schedulers
  // like Groute may legitimately take different - occasionally worse -
  // trajectories when transfer costs change.)
  const WorkloadStream stream = make_stream();
  for (const SchedulerKind kind :
       {SchedulerKind::kRoundRobin, SchedulerKind::kLoadBalanceOnly}) {
    const std::unique_ptr<Scheduler> s_off = make_scheduler(kind);
    const std::unique_ptr<Scheduler> s_on = make_scheduler(kind);
    const double off =
        run_stream(stream, *s_off, cluster(false)).metrics.makespan_s;
    const double on =
        run_stream(stream, *s_on, cluster(true)).metrics.makespan_s;
    EXPECT_LE(on, off * (1.0 + 1e-9)) << to_string(kind);
  }
}

TEST_P(SchedulerProperties2, OverlapNeverSlowsTimingIndependentSchedule) {
  const WorkloadStream stream = make_stream();
  RoundRobinScheduler s_off, s_on;  // timing-independent assignment
  const double off =
      run_stream(stream, s_off, cluster(false, false)).metrics.makespan_s;
  const double on =
      run_stream(stream, s_on, cluster(false, true)).metrics.makespan_s;
  EXPECT_LE(on, off * (1.0 + 1e-9));
}

TEST_P(SchedulerProperties2, SplittingNodesNeverSpeedsUp) {
  // With P2P on, moving from one node to two replaces some fast intra-node
  // links with the slower inter-node link; under a timing-independent
  // assignment the makespan cannot improve.
  const WorkloadStream stream = make_stream();
  ClusterConfig one_node = cluster(true);
  one_node.devices_per_node = 4;
  ClusterConfig two_nodes = cluster(true);
  two_nodes.devices_per_node = 2;

  RoundRobinScheduler s1, s2;
  const double single =
      run_stream(stream, s1, one_node).metrics.makespan_s;
  const double split =
      run_stream(stream, s2, two_nodes).metrics.makespan_s;
  EXPECT_GE(split, single * (1.0 - 1e-9));
}

TEST_P(SchedulerProperties2, TraceDurationsCoverDeviceWork) {
  // Sum of traced kernel+memory event durations equals the accumulated
  // device work time (nothing the simulator prices escapes the trace).
  const WorkloadStream stream = make_stream();
  MiccoScheduler sched;
  TraceRecorder trace;
  RunOptions options;
  options.trace = &trace;
  const RunResult r = run_stream(stream, sched, cluster(), options);

  double traced = 0.0;
  for (const TraceEventKind kind :
       {TraceEventKind::kFetchH2D, TraceEventKind::kFetchP2P,
        TraceEventKind::kOutputAlloc, TraceEventKind::kEviction,
        TraceEventKind::kKernel}) {
    traced += trace.summarize(kind).total_s;
  }
  EXPECT_NEAR(traced,
              r.metrics.kernel_time_s + r.metrics.transfer_time_s,
              1e-9);
}

TEST_P(SchedulerProperties2, DmdaConservesWorkAndStaysReasonable) {
  const WorkloadStream stream = make_stream();
  DmdaScheduler dmda;
  GrouteScheduler groute;
  const RunResult d = run_stream(stream, dmda, cluster());
  const RunResult g = run_stream(stream, groute, cluster());
  EXPECT_EQ(d.metrics.total_flops, stream.total_flops());
  // Data-awareness must not catastrophically backfire.
  EXPECT_LT(d.metrics.makespan_s, g.metrics.makespan_s * 1.5);
}

TEST_P(SchedulerProperties2, NumericDigestIndependentOfScheduler) {
  // The full loop: any scheduler's assignment is numerically irrelevant;
  // execute the stream and compare against the reference digest.
  const WorkloadStream stream = make_stream();
  const double reference = execute_numerically(stream).digest;
  EXPECT_DOUBLE_EQ(execute_numerically(stream).digest, reference);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep2, SchedulerProperties2,
    ::testing::Values(Case2{8, 0.5, DataDistribution::kUniform, 31},
                      Case2{16, 0.75, DataDistribution::kGaussian, 32},
                      Case2{16, 1.0, DataDistribution::kUniform, 33},
                      Case2{32, 0.25, DataDistribution::kGaussian, 34},
                      Case2{32, 0.75, DataDistribution::kUniform, 35},
                      Case2{64, 0.5, DataDistribution::kGaussian, 36}),
    case2_name);

}  // namespace
}  // namespace micco
