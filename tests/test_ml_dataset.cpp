#include "ml/dataset.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace micco::ml {
namespace {

Dataset make_dataset(std::size_t rows) {
  Dataset d(2);
  for (std::size_t i = 0; i < rows; ++i) {
    const double x = static_cast<double>(i);
    const double features[2] = {x, 2.0 * x};
    d.add(features, 3.0 * x);
  }
  return d;
}

TEST(Dataset, AddAndAccess) {
  const Dataset d = make_dataset(3);
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d.n_features(), 2u);
  EXPECT_DOUBLE_EQ(d.row(1)[0], 1.0);
  EXPECT_DOUBLE_EQ(d.row(1)[1], 2.0);
  EXPECT_DOUBLE_EQ(d.target(2), 6.0);
}

TEST(Dataset, EmptyByDefault) {
  Dataset d(4);
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.size(), 0u);
}

TEST(Dataset, WrongFeatureCountAborts) {
  Dataset d(3);
  const double features[2] = {1.0, 2.0};
  EXPECT_DEATH(d.add(std::span<const double>(features, 2), 0.0),
               "n_features");
}

TEST(Dataset, SubsetSelectsRows) {
  const Dataset d = make_dataset(5);
  const std::vector<std::size_t> idx{4, 0};
  const Dataset s = d.subset(idx);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.row(0)[0], 4.0);
  EXPECT_DOUBLE_EQ(s.row(1)[0], 0.0);
  EXPECT_DOUBLE_EQ(s.target(0), 12.0);
}

TEST(Dataset, SubsetWithRepeats) {
  const Dataset d = make_dataset(3);
  const std::vector<std::size_t> idx{1, 1, 1};
  const Dataset s = d.subset(idx);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.target(2), 3.0);
}

TEST(TrainTestSplit, PartitionSizes) {
  const Dataset d = make_dataset(10);
  Pcg32 rng(1);
  const SplitResult split = train_test_split(d, 0.2, rng);
  EXPECT_EQ(split.test.size(), 2u);
  EXPECT_EQ(split.train.size(), 8u);
}

TEST(TrainTestSplit, CoversAllRowsExactlyOnce) {
  const Dataset d = make_dataset(10);
  Pcg32 rng(2);
  const SplitResult split = train_test_split(d, 0.3, rng);
  std::vector<double> firsts;
  for (std::size_t i = 0; i < split.train.size(); ++i) {
    firsts.push_back(split.train.row(i)[0]);
  }
  for (std::size_t i = 0; i < split.test.size(); ++i) {
    firsts.push_back(split.test.row(i)[0]);
  }
  std::sort(firsts.begin(), firsts.end());
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(firsts[i], static_cast<double>(i));
  }
}

TEST(TrainTestSplit, AtLeastOneRowEachSide) {
  const Dataset d = make_dataset(2);
  Pcg32 rng(3);
  const SplitResult split = train_test_split(d, 0.01, rng);
  EXPECT_GE(split.test.size(), 1u);
  EXPECT_GE(split.train.size(), 1u);
}

TEST(R2Score, PerfectPredictionIsOne) {
  const std::vector<double> truth{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(r2_score(truth, truth), 1.0);
}

TEST(R2Score, MeanPredictionIsZero) {
  const std::vector<double> truth{1.0, 2.0, 3.0};
  const std::vector<double> mean_pred{2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(r2_score(truth, mean_pred), 0.0);
}

TEST(R2Score, WorseThanMeanIsNegative) {
  const std::vector<double> truth{1.0, 2.0, 3.0};
  const std::vector<double> bad{3.0, 3.0, 0.0};
  EXPECT_LT(r2_score(truth, bad), 0.0);
}

TEST(R2Score, ConstantTruthEdgeCases) {
  const std::vector<double> truth{2.0, 2.0};
  EXPECT_DOUBLE_EQ(r2_score(truth, truth), 1.0);
  const std::vector<double> off{2.0, 3.0};
  EXPECT_DOUBLE_EQ(r2_score(truth, off), 0.0);
}

TEST(Mse, KnownValue) {
  const std::vector<double> truth{1.0, 2.0};
  const std::vector<double> pred{2.0, 4.0};
  EXPECT_DOUBLE_EQ(mse(truth, pred), (1.0 + 4.0) / 2.0);
}

}  // namespace
}  // namespace micco::ml
