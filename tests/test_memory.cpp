#include "gpusim/memory.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace micco {
namespace {

TEST(DeviceMemory, AllocateTracksUsage) {
  DeviceMemory mem(1000);
  EXPECT_EQ(mem.used(), 0u);
  EXPECT_EQ(mem.free_bytes(), 1000u);
  mem.allocate(1, 300, false);
  EXPECT_EQ(mem.used(), 300u);
  EXPECT_EQ(mem.free_bytes(), 700u);
  EXPECT_TRUE(mem.resident(1));
  EXPECT_EQ(mem.resident_count(), 1u);
}

TEST(DeviceMemory, FitsChecksCapacity) {
  DeviceMemory mem(1000);
  mem.allocate(1, 600, false);
  EXPECT_TRUE(mem.fits(400));
  EXPECT_FALSE(mem.fits(401));
}

TEST(DeviceMemory, ReleaseReturnsBytes) {
  DeviceMemory mem(1000);
  mem.allocate(1, 300, false);
  mem.release(1);
  EXPECT_EQ(mem.used(), 0u);
  EXPECT_FALSE(mem.resident(1));
}

TEST(DeviceMemory, EvictLruPicksOldestUntouched) {
  DeviceMemory mem(1000);
  mem.allocate(1, 100, false);
  mem.allocate(2, 100, false);
  mem.allocate(3, 100, false);
  const auto ev = mem.evict_lru();
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->id, 1u);
  EXPECT_EQ(ev->bytes, 100u);
  EXPECT_FALSE(ev->dirty);
}

TEST(DeviceMemory, TouchPromotesToMostRecent) {
  DeviceMemory mem(1000);
  mem.allocate(1, 100, false);
  mem.allocate(2, 100, false);
  mem.touch(1);
  const auto ev = mem.evict_lru();
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->id, 2u);
}

TEST(DeviceMemory, PinnedTensorsSurviveEviction) {
  DeviceMemory mem(1000);
  mem.allocate(1, 100, false);
  mem.allocate(2, 100, false);
  mem.pin(1);
  const auto ev = mem.evict_lru();
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->id, 2u);  // LRU but pinned tensor 1 is skipped? order: 1 older
}

TEST(DeviceMemory, AllPinnedMeansNoVictim) {
  DeviceMemory mem(1000);
  mem.allocate(1, 100, false);
  mem.pin(1);
  EXPECT_FALSE(mem.evict_lru().has_value());
}

TEST(DeviceMemory, UnpinRestoresEvictability) {
  DeviceMemory mem(1000);
  mem.allocate(1, 100, false);
  mem.pin(1);
  mem.unpin(1);
  EXPECT_TRUE(mem.evict_lru().has_value());
}

TEST(DeviceMemory, DirtyFlagTravelsWithEviction) {
  DeviceMemory mem(1000);
  mem.allocate(1, 100, true);
  const auto ev = mem.evict_lru();
  ASSERT_TRUE(ev.has_value());
  EXPECT_TRUE(ev->dirty);
}

TEST(DeviceMemory, SetDirtyRoundTrip) {
  DeviceMemory mem(1000);
  mem.allocate(1, 100, false);
  EXPECT_FALSE(mem.is_dirty(1));
  mem.set_dirty(1, true);
  EXPECT_TRUE(mem.is_dirty(1));
  mem.set_dirty(1, false);
  EXPECT_FALSE(mem.is_dirty(1));
}

TEST(DeviceMemory, ResidentIdsListsAll) {
  DeviceMemory mem(1000);
  mem.allocate(5, 100, false);
  mem.allocate(9, 100, false);
  auto ids = mem.resident_ids();
  std::sort(ids.begin(), ids.end());
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], 5u);
  EXPECT_EQ(ids[1], 9u);
}

TEST(DeviceMemory, DoubleAllocationAborts) {
  DeviceMemory mem(1000);
  mem.allocate(1, 100, false);
  EXPECT_DEATH(mem.allocate(1, 100, false), "double allocation");
}

TEST(DeviceMemory, OverCapacityAllocationAborts) {
  DeviceMemory mem(100);
  EXPECT_DEATH(mem.allocate(1, 200, false), "eviction");
}

TEST(DeviceMemory, ReleaseUnknownAborts) {
  DeviceMemory mem(100);
  EXPECT_DEATH(mem.release(42), "non-resident");
}

TEST(DeviceMemory, EvictByIdReleasesAndReports) {
  DeviceMemory mem(1000);
  mem.allocate(1, 100, false);
  mem.allocate(2, 200, true);
  const auto ev = mem.evict(2);
  EXPECT_EQ(ev.id, 2u);
  EXPECT_EQ(ev.bytes, 200u);
  EXPECT_TRUE(ev.dirty);
  EXPECT_FALSE(mem.resident(2));
  EXPECT_EQ(mem.used(), 100u);
}

TEST(DeviceMemory, EvictPinnedOrAbsentAborts) {
  DeviceMemory mem(1000);
  mem.allocate(1, 100, false);
  mem.pin(1);
  EXPECT_DEATH(mem.evict(1), "pinned");
  EXPECT_DEATH(mem.evict(42), "");
}

TEST(DeviceMemory, GrowAfterShrinkWithLiveResidents) {
  // A capacity fault shrinks the device; when the fault heals, capacity is
  // restored *above* current usage while the shrunken era's residents are
  // still live. That growth must not assert, and the extra bytes must be
  // allocatable immediately.
  DeviceMemory mem(1000);
  mem.allocate(1, 300, false);
  mem.allocate(2, 300, true);
  mem.set_capacity(700);  // shrink; both residents still fit
  EXPECT_FALSE(mem.fits(200));
  mem.set_capacity(2000);  // the fault heals: grow past the original size
  EXPECT_EQ(mem.used(), 600u);
  EXPECT_TRUE(mem.resident(1));
  EXPECT_TRUE(mem.resident(2));
  EXPECT_TRUE(mem.fits(1400));
  mem.allocate(3, 1400, false);
  EXPECT_EQ(mem.used(), 2000u);
  // LRU order survived the resize cycle untouched.
  const auto ev = mem.evict_lru();
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->id, 1u);
}

TEST(DeviceMemory, EvictionSequenceFollowsLruOrder) {
  DeviceMemory mem(1000);
  for (TensorId id = 0; id < 5; ++id) mem.allocate(id, 100, false);
  mem.touch(0);  // order now: 1,2,3,4,0
  for (const TensorId expected : {1u, 2u, 3u, 4u, 0u}) {
    const auto ev = mem.evict_lru();
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->id, expected);
  }
  EXPECT_EQ(mem.resident_count(), 0u);
}

}  // namespace
}  // namespace micco
