#include "graph/contraction_graph.hpp"

#include <gtest/gtest.h>

namespace micco {
namespace {

TEST(NodeRegistry, OriginalInterning) {
  NodeRegistry reg(16, 2);
  const TensorDesc a = reg.original("pi(t=0)");
  const TensorDesc b = reg.original("pi(t=0)");
  const TensorDesc c = reg.original("pi(t=1)");
  EXPECT_EQ(a.id, b.id);
  EXPECT_NE(a.id, c.id);
  EXPECT_EQ(reg.original_count(), 2u);
  EXPECT_EQ(a.extent, 16);
  EXPECT_EQ(a.batch, 2);
}

TEST(NodeRegistry, IntermediateCommutative) {
  NodeRegistry reg(16, 2);
  const TensorDesc a = reg.original("a");
  const TensorDesc b = reg.original("b");
  const TensorDesc ab = reg.intermediate(a.id, b.id);
  const TensorDesc ba = reg.intermediate(b.id, a.id);
  EXPECT_EQ(ab.id, ba.id);
  EXPECT_EQ(reg.intermediate_count(), 1u);
  EXPECT_TRUE(reg.has_intermediate(a.id, b.id));
  EXPECT_TRUE(reg.has_intermediate(b.id, a.id));
  EXPECT_FALSE(reg.has_intermediate(a.id, ab.id));
}

TEST(NodeRegistry, IntermediatesAreRank2) {
  NodeRegistry reg(16, 2, /*rank=*/3);
  const TensorDesc a = reg.original("a");
  EXPECT_EQ(a.rank, 3);
  const TensorDesc ab = reg.intermediate(a.id, reg.original("b").id);
  EXPECT_EQ(ab.rank, 2);
}

TEST(ContractionGraph, NodeAndEdgeBookkeeping) {
  NodeRegistry reg(16, 2);
  ContractionGraph g;
  const std::size_t u = g.add_node(reg.original("a"));
  const std::size_t v = g.add_node(reg.original("b"));
  g.add_edge(u, v);
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(ContractionGraph, SelfLoopAborts) {
  NodeRegistry reg(16, 2);
  ContractionGraph g;
  const std::size_t u = g.add_node(reg.original("a"));
  EXPECT_DEATH(g.add_edge(u, u), "self-loop");
}

TEST(ContractionGraph, ConnectivityCheck) {
  NodeRegistry reg(16, 2);
  ContractionGraph g;
  const std::size_t a = g.add_node(reg.original("a"));
  const std::size_t b = g.add_node(reg.original("b"));
  const std::size_t c = g.add_node(reg.original("c"));
  g.add_edge(a, b);
  EXPECT_FALSE(g.connected());
  g.add_edge(b, c);
  EXPECT_TRUE(g.connected());
}

TEST(ContractionGraph, SignatureIdentifiesContent) {
  NodeRegistry reg(16, 2);
  const TensorDesc a = reg.original("a");
  const TensorDesc b = reg.original("b");

  ContractionGraph g1;
  g1.add_edge(g1.add_node(a), g1.add_node(b));
  ContractionGraph g2;  // same content, nodes added in opposite order
  const std::size_t nb = g2.add_node(b);
  const std::size_t na = g2.add_node(a);
  g2.add_edge(nb, na);
  EXPECT_EQ(g1.signature(), g2.signature());

  ContractionGraph g3;  // different content
  g3.add_edge(g3.add_node(a), g3.add_node(reg.original("c")));
  EXPECT_NE(g1.signature(), g3.signature());
}

TEST(ContractionGraph, DotExportMentionsNodesAndEdges) {
  NodeRegistry reg(16, 2);
  ContractionGraph g;
  g.add_edge(g.add_node(reg.original("a")), g.add_node(reg.original("b")));
  const std::string dot = g.to_dot("test");
  EXPECT_NE(dot.find("graph \"test\""), std::string::npos);
  EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
}

TEST(Planner, TwoNodeGraphYieldsOneContraction) {
  NodeRegistry reg(16, 2);
  ContractionPlanner planner(reg);
  ContractionGraph g;
  g.add_edge(g.add_node(reg.original("a")), g.add_node(reg.original("b")));
  planner.add_graph(g);
  EXPECT_EQ(planner.task_count(), 1u);
  const auto stages = planner.stages();
  ASSERT_EQ(stages.size(), 1u);
  EXPECT_EQ(stages[0].tasks.size(), 1u);
}

TEST(Planner, ChainGraphBuildsStagedDependencies) {
  // a - b - c: reduce (a,b) first, then (ab, c) in the next stage.
  NodeRegistry reg(16, 2);
  ContractionPlanner planner(reg);
  ContractionGraph g;
  const std::size_t a = g.add_node(reg.original("a"));
  const std::size_t b = g.add_node(reg.original("b"));
  const std::size_t c = g.add_node(reg.original("c"));
  g.add_edge(a, b);
  g.add_edge(b, c);
  planner.add_graph(g);

  EXPECT_EQ(planner.task_count(), 2u);
  const auto stages = planner.stages();
  ASSERT_EQ(stages.size(), 2u);
  // Stage 1's task consumes stage 0's output.
  const TensorId intermediate = stages[0].tasks[0].out.id;
  const ContractionTask& final_task = stages[1].tasks[0];
  EXPECT_TRUE(final_task.a.id == intermediate ||
              final_task.b.id == intermediate);
}

TEST(Planner, ParallelEdgesCollapseInOneContraction) {
  // Two propagators between the same hadrons reduce in a single hadron
  // contraction.
  NodeRegistry reg(16, 2);
  ContractionPlanner planner(reg);
  ContractionGraph g;
  const std::size_t a = g.add_node(reg.original("a"));
  const std::size_t b = g.add_node(reg.original("b"));
  g.add_edge(a, b);
  g.add_edge(a, b);
  planner.add_graph(g);
  EXPECT_EQ(planner.task_count(), 1u);
}

TEST(Planner, SharedSubReductionDeduplicatedAcrossGraphs) {
  NodeRegistry reg(16, 2);
  ContractionPlanner planner(reg);
  const TensorDesc a = reg.original("a");
  const TensorDesc b = reg.original("b");

  ContractionGraph g1;
  {
    const auto na = g1.add_node(a);
    const auto nb = g1.add_node(b);
    const auto nc = g1.add_node(reg.original("c"));
    g1.add_edge(na, nb);
    g1.add_edge(nb, nc);
  }
  ContractionGraph g2;  // shares the (a, b) reduction
  {
    const auto na = g2.add_node(a);
    const auto nb = g2.add_node(b);
    const auto nd = g2.add_node(reg.original("d"));
    g2.add_edge(na, nb);
    g2.add_edge(nb, nd);
  }
  planner.add_graph(g1);
  planner.add_graph(g2);

  // 4 reductions total, but (a, b) is planned once.
  EXPECT_EQ(planner.task_count(), 3u);
  EXPECT_EQ(planner.deduplicated(), 1u);
}

TEST(Planner, StagesRespectCrossGraphAvailability) {
  // Graph 2 consumes the intermediate of graph 1; its final contraction
  // must land in a stage after the producing one.
  NodeRegistry reg(16, 2);
  ContractionPlanner planner(reg);
  const TensorDesc a = reg.original("a");
  const TensorDesc b = reg.original("b");

  ContractionGraph g1;
  g1.add_edge(g1.add_node(a), g1.add_node(b));
  planner.add_graph(g1);  // produces ab at stage 0

  ContractionGraph g2;
  {
    const auto na = g2.add_node(a);
    const auto nb = g2.add_node(b);
    const auto nc = g2.add_node(reg.original("c"));
    g2.add_edge(na, nb);  // deduplicated to graph 1's intermediate
    g2.add_edge(nb, nc);
  }
  planner.add_graph(g2);

  const auto stages = planner.stages();
  ASSERT_GE(stages.size(), 2u);
  const TensorId ab = reg.intermediate(a.id, b.id).id;
  bool found = false;
  for (const ContractionTask& t : stages[1].tasks) {
    if (t.a.id == ab || t.b.id == ab) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Planner, TriangleGraphReducesCompletely) {
  // a - b - c - a: three edges; two contractions fully reduce it (the
  // third edge collapses into the final contraction as a parallel edge).
  NodeRegistry reg(16, 2);
  ContractionPlanner planner(reg);
  ContractionGraph g;
  const std::size_t a = g.add_node(reg.original("a"));
  const std::size_t b = g.add_node(reg.original("b"));
  const std::size_t c = g.add_node(reg.original("c"));
  g.add_edge(a, b);
  g.add_edge(b, c);
  g.add_edge(c, a);
  planner.add_graph(g);
  EXPECT_EQ(planner.task_count(), 2u);
}

TEST(Planner, DisconnectedComponentsEachReduce) {
  NodeRegistry reg(16, 2);
  ContractionPlanner planner(reg);
  ContractionGraph g;
  const std::size_t a = g.add_node(reg.original("a"));
  const std::size_t b = g.add_node(reg.original("b"));
  const std::size_t c = g.add_node(reg.original("c"));
  const std::size_t d = g.add_node(reg.original("d"));
  g.add_edge(a, b);
  g.add_edge(c, d);
  planner.add_graph(g);
  EXPECT_EQ(planner.task_count(), 2u);
  EXPECT_EQ(planner.stages().size(), 1u);  // both are independent, stage 0
}

TEST(Planner, DeterministicOrder) {
  const auto build = [] {
    NodeRegistry reg(16, 2);
    ContractionPlanner planner(reg);
    ContractionGraph g;
    std::vector<std::size_t> nodes;
    for (int i = 0; i < 5; ++i) {
      std::string name = "n";
      name += std::to_string(i);
      nodes.push_back(g.add_node(reg.original(name)));
    }
    for (int i = 0; i < 4; ++i) {
      g.add_edge(nodes[static_cast<std::size_t>(i)],
                 nodes[static_cast<std::size_t>(i + 1)]);
    }
    planner.add_graph(g);
    std::vector<TensorId> order;
    for (const PlannedContraction& p : planner.planned()) {
      order.push_back(p.task.out.id);
    }
    return order;
  };
  EXPECT_EQ(build(), build());
}

}  // namespace
}  // namespace micco
