#include "ml/linear_regression.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace micco::ml {
namespace {

TEST(SolveLinearSystem, Identity) {
  const std::vector<double> a{1, 0, 0, 1};
  const std::vector<double> b{3, 4};
  const std::vector<double> x = solve_linear_system(a, b);
  EXPECT_DOUBLE_EQ(x[0], 3.0);
  EXPECT_DOUBLE_EQ(x[1], 4.0);
}

TEST(SolveLinearSystem, KnownSystem) {
  // 2x + y = 5; x + 3y = 10 -> x = 1, y = 3
  const std::vector<double> a{2, 1, 1, 3};
  const std::vector<double> b{5, 10};
  const std::vector<double> x = solve_linear_system(a, b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveLinearSystem, RequiresPivoting) {
  // Zero on the initial diagonal; partial pivoting must handle it.
  const std::vector<double> a{0, 1, 1, 0};
  const std::vector<double> b{2, 3};
  const std::vector<double> x = solve_linear_system(a, b);
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolveLinearSystem, SingularAborts) {
  const std::vector<double> a{1, 1, 1, 1};
  const std::vector<double> b{1, 2};
  EXPECT_DEATH((void)solve_linear_system(a, b), "singular");
}

TEST(LinearRegression, RecoversExactLinearRelation) {
  Dataset d(2);
  Pcg32 rng(1);
  for (int i = 0; i < 50; ++i) {
    const double x0 = rng.uniform_real(-5, 5);
    const double x1 = rng.uniform_real(-5, 5);
    const double features[2] = {x0, x1};
    d.add(features, 2.0 + 3.0 * x0 - 1.5 * x1);
  }
  LinearRegression lr;
  lr.fit(d);
  ASSERT_EQ(lr.weights().size(), 3u);
  EXPECT_NEAR(lr.weights()[0], 2.0, 1e-6);
  EXPECT_NEAR(lr.weights()[1], 3.0, 1e-6);
  EXPECT_NEAR(lr.weights()[2], -1.5, 1e-6);

  const double probe[2] = {1.0, 2.0};
  EXPECT_NEAR(lr.predict(probe), 2.0 + 3.0 - 3.0, 1e-6);
}

TEST(LinearRegression, HighR2OnNoisyLinearData) {
  Dataset d(1);
  Pcg32 rng(2);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform_real(0, 10);
    const double features[1] = {x};
    d.add(features, 4.0 * x + rng.gaussian(0.0, 0.1));
  }
  LinearRegression lr;
  lr.fit(d);
  const std::vector<double> pred = lr.predict_all(d);
  EXPECT_GT(r2_score(d.targets(), pred), 0.99);
}

TEST(LinearRegression, PoorFitOnStrongNonlinearity) {
  // The Table IV story: linear models cannot capture the bounds surface.
  Dataset d(1);
  for (int i = -20; i <= 20; ++i) {
    const double x = static_cast<double>(i);
    const double features[1] = {x};
    d.add(features, x * x);  // symmetric parabola: slope ~ 0
  }
  LinearRegression lr;
  lr.fit(d);
  const std::vector<double> pred = lr.predict_all(d);
  EXPECT_LT(r2_score(d.targets(), pred), 0.1);
}

TEST(LinearRegression, CollinearFeaturesSurviveViaRidge) {
  Dataset d(2);
  Pcg32 rng(3);
  for (int i = 0; i < 30; ++i) {
    const double x = rng.uniform_real(0, 1);
    const double features[2] = {x, 2.0 * x};  // perfectly collinear
    d.add(features, 5.0 * x);
  }
  LinearRegression lr(1e-6);
  lr.fit(d);  // must not abort
  const double probe[2] = {0.5, 1.0};
  EXPECT_NEAR(lr.predict(probe), 2.5, 1e-3);
}

TEST(LinearRegression, PredictBeforeFitAborts) {
  LinearRegression lr;
  const double probe[1] = {1.0};
  EXPECT_DEATH((void)lr.predict(probe), "fit");
}

TEST(LinearRegression, Name) {
  EXPECT_EQ(LinearRegression{}.name(), "LinearRegression");
}

}  // namespace
}  // namespace micco::ml
