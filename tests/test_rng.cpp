#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace micco {
namespace {

TEST(Pcg32, SameSeedSameSequence) {
  Pcg32 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Pcg32, DifferentSeedsDiverge) {
  Pcg32 a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() != b()) ++differences;
  }
  EXPECT_GT(differences, 50);
}

TEST(Pcg32, DifferentStreamsDiverge) {
  Pcg32 a(42, 1), b(42, 2);
  int differences = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() != b()) ++differences;
  }
  EXPECT_GT(differences, 50);
}

TEST(Pcg32, ReferenceSequenceIsStable) {
  // Pins the cross-platform stream so experiment seeds regenerate
  // identically anywhere: first outputs of the default-constructed engine.
  Pcg32 rng;
  const std::uint32_t first = rng();
  Pcg32 again;
  EXPECT_EQ(again(), first);
}

TEST(Pcg32, UniformBelowStaysInRange) {
  Pcg32 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_below(17), 17u);
  }
}

TEST(Pcg32, UniformBelowOneAlwaysZero) {
  Pcg32 rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_below(1), 0u);
}

TEST(Pcg32, UniformBelowCoversAllValues) {
  Pcg32 rng(9);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Pcg32, UniformIntHonorsClosedInterval) {
  Pcg32 rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Pcg32, UniformIntSingletonInterval) {
  Pcg32 rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Pcg32, Uniform01InHalfOpenUnitInterval) {
  Pcg32 rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Pcg32, Uniform01MeanNearHalf) {
  Pcg32 rng(17);
  double acc = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) acc += rng.uniform01();
  EXPECT_NEAR(acc / kN, 0.5, 0.02);
}

TEST(Pcg32, GaussianMomentsMatch) {
  Pcg32 rng(19);
  constexpr int kN = 20000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.gaussian(3.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Pcg32, ShuffleIsPermutation) {
  Pcg32 rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Pcg32, ShuffleActuallyPermutes) {
  Pcg32 rng(29);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);
}

TEST(Pcg32, SampleWithoutReplacementDistinct) {
  Pcg32 rng(31);
  const auto sample = rng.sample_without_replacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (const std::size_t s : sample) EXPECT_LT(s, 50u);
}

TEST(Pcg32, SampleFullRangeIsPermutation) {
  Pcg32 rng(37);
  auto sample = rng.sample_without_replacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(Pcg32, SampleZeroIsEmpty) {
  Pcg32 rng(41);
  EXPECT_TRUE(rng.sample_without_replacement(5, 0).empty());
}

}  // namespace
}  // namespace micco
