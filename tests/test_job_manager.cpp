// Unit tests for the daemon's job book of record: admission control,
// weighted fair-share dispatch, the job lifecycle, and drain semantics.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "service/job_manager.hpp"
#include "workload/synthetic.hpp"

namespace micco::service {
namespace {

WorkloadStream tiny_stream(std::uint64_t seed = 1) {
  SyntheticConfig cfg;
  cfg.num_vectors = 1;
  cfg.vector_size = 8;
  cfg.seed = seed;
  return generate_synthetic(cfg);
}

CompletionTiming queue_only(double queue_ms) {
  CompletionTiming timing;
  timing.queue_latency_ms = queue_ms;
  timing.e2e_latency_ms = queue_ms;
  return timing;
}

TEST(JobManager, LifecycleQueuedRunningDone) {
  JobManager jobs;
  const SubmitOutcome outcome = jobs.submit("alice", "job-a", tiny_stream());
  ASSERT_TRUE(outcome.admitted);
  EXPECT_EQ(outcome.job_id, 1u);
  EXPECT_EQ(jobs.status(1)->state, JobState::kQueued);
  EXPECT_EQ(jobs.status(1)->queue_position, 0);
  EXPECT_FALSE(jobs.result(1).has_value());

  const auto picked = jobs.next_job();
  ASSERT_TRUE(picked.has_value());
  EXPECT_EQ(*picked, 1u);
  EXPECT_EQ(jobs.status(1)->state, JobState::kRunning);
  const WorkloadStream stream = jobs.take_stream(1);
  EXPECT_FALSE(stream.vectors.empty());

  obs::JsonValue result = obs::JsonValue::object();
  result.set("makespan_s", 0.5);
  jobs.complete(1, std::move(result), queue_only(12.0));
  EXPECT_EQ(jobs.status(1)->state, JobState::kDone);
  ASSERT_TRUE(jobs.result(1).has_value());
  EXPECT_DOUBLE_EQ(jobs.result(1)->at("makespan_s").as_double(), 0.5);
  EXPECT_TRUE(jobs.idle());
}

TEST(JobManager, FailedJobKeepsErrorAndResult) {
  JobManager jobs;
  ASSERT_TRUE(jobs.submit("t", "", tiny_stream()).admitted);
  ASSERT_TRUE(jobs.next_job().has_value());
  obs::JsonValue result = obs::JsonValue::object();
  result.set("completed", false);
  jobs.fail(1, "device 0 lost", std::move(result), queue_only(3.0));
  EXPECT_EQ(jobs.status(1)->state, JobState::kFailed);
  EXPECT_EQ(jobs.status(1)->error, "device 0 lost");
  EXPECT_TRUE(jobs.result(1).has_value());
}

TEST(JobManager, UnknownJobQueriesReturnNullopt) {
  JobManager jobs;
  EXPECT_FALSE(jobs.status(42).has_value());
  EXPECT_FALSE(jobs.result(42).has_value());
  EXPECT_FALSE(jobs.next_job().has_value());
}

TEST(JobManager, PerTenantQueueDepthRejects) {
  AdmissionConfig config;
  config.max_queue_per_tenant = 2;
  JobManager jobs(config);
  EXPECT_TRUE(jobs.submit("a", "", tiny_stream()).admitted);
  EXPECT_TRUE(jobs.submit("a", "", tiny_stream()).admitted);
  const SubmitOutcome rejected = jobs.submit("a", "", tiny_stream());
  EXPECT_FALSE(rejected.admitted);
  EXPECT_EQ(rejected.reject_code, "queue_full");
  EXPECT_FALSE(rejected.reject_reason.empty());
  // Another tenant is unaffected by a's full queue.
  EXPECT_TRUE(jobs.submit("b", "", tiny_stream()).admitted);
}

TEST(JobManager, TotalQueueDepthRejects) {
  AdmissionConfig config;
  config.max_queue_per_tenant = 64;
  config.max_queued_total = 3;
  JobManager jobs(config);
  EXPECT_TRUE(jobs.submit("a", "", tiny_stream()).admitted);
  EXPECT_TRUE(jobs.submit("b", "", tiny_stream()).admitted);
  EXPECT_TRUE(jobs.submit("c", "", tiny_stream()).admitted);
  const SubmitOutcome rejected = jobs.submit("d", "", tiny_stream());
  EXPECT_FALSE(rejected.admitted);
  EXPECT_EQ(rejected.reject_code, "queue_full");
}

TEST(JobManager, DrainRejectsNewWorkButFinishesBacklog) {
  JobManager jobs;
  ASSERT_TRUE(jobs.submit("a", "", tiny_stream()).admitted);
  jobs.begin_drain();
  EXPECT_TRUE(jobs.draining());
  const SubmitOutcome rejected = jobs.submit("a", "", tiny_stream());
  EXPECT_FALSE(rejected.admitted);
  EXPECT_EQ(rejected.reject_code, "draining");
  // The queued job still dispatches.
  ASSERT_TRUE(jobs.next_job().has_value());
  jobs.complete(1, obs::JsonValue::object(), queue_only(1.0));
  EXPECT_TRUE(jobs.idle());
}

TEST(JobManager, CancelQueuedEmptiesBacklog) {
  JobManager jobs;
  ASSERT_TRUE(jobs.submit("a", "", tiny_stream()).admitted);
  ASSERT_TRUE(jobs.submit("b", "", tiny_stream()).admitted);
  ASSERT_TRUE(jobs.next_job().has_value());  // job 1 now RUNNING
  EXPECT_EQ(jobs.cancel_queued().size(), 1u);  // job 2 cancelled
  EXPECT_EQ(jobs.status(2)->state, JobState::kCancelled);
  EXPECT_FALSE(jobs.idle());  // job 1 still in flight
  jobs.complete(1, obs::JsonValue::object(), queue_only(1.0));
  EXPECT_TRUE(jobs.idle());
  EXPECT_FALSE(jobs.next_job().has_value());
}

TEST(JobManager, FairShareFollowsWeights) {
  // alice weight 3, bob weight 1 → over 8 dispatches alice gets 6, bob 2.
  AdmissionConfig config;
  config.tenant_weights["alice"] = 3;
  JobManager jobs(config);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(jobs.submit("alice", "", tiny_stream()).admitted);
  }
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(jobs.submit("bob", "", tiny_stream()).admitted);
  }
  std::map<std::string, int> dispatched;
  for (int i = 0; i < 8; ++i) {
    const auto id = jobs.next_job();
    ASSERT_TRUE(id.has_value());
    ++dispatched[jobs.status(*id)->tenant];
    jobs.complete(*id, obs::JsonValue::object(), queue_only(0.0));
  }
  EXPECT_EQ(dispatched["alice"], 6);
  EXPECT_EQ(dispatched["bob"], 2);
}

TEST(JobManager, EqualWeightsAlternate) {
  JobManager jobs;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(jobs.submit("a", "", tiny_stream()).admitted);
    ASSERT_TRUE(jobs.submit("b", "", tiny_stream()).admitted);
  }
  std::vector<std::string> order;
  while (const auto id = jobs.next_job()) {
    order.push_back(jobs.status(*id)->tenant);
    jobs.complete(*id, obs::JsonValue::object(), queue_only(0.0));
  }
  const std::vector<std::string> expected{"a", "b", "a", "b", "a", "b"};
  EXPECT_EQ(order, expected);
}

TEST(JobManager, IdleTenantCannotBankCredit) {
  // b sits idle while a dispatches many jobs; when b finally submits it must
  // not get a burst of consecutive dispatches (stride re-entry rule).
  JobManager jobs;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(jobs.submit("a", "", tiny_stream()).admitted);
  }
  for (int i = 0; i < 10; ++i) {
    const auto id = jobs.next_job();
    ASSERT_TRUE(id.has_value());
    jobs.complete(*id, obs::JsonValue::object(), queue_only(0.0));
  }
  // Now b joins with a backlog, a refills too.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(jobs.submit("b", "", tiny_stream()).admitted);
    ASSERT_TRUE(jobs.submit("a", "", tiny_stream()).admitted);
  }
  std::vector<std::string> order;
  for (int i = 0; i < 4; ++i) {
    const auto id = jobs.next_job();
    ASSERT_TRUE(id.has_value());
    order.push_back(jobs.status(*id)->tenant);
    jobs.complete(*id, obs::JsonValue::object(), queue_only(0.0));
  }
  // Alternation, not a b-burst. Tie at re-entry breaks by name: a first.
  const std::vector<std::string> expected{"a", "b", "a", "b"};
  EXPECT_EQ(order, expected);
}

TEST(JobManager, StatsAndMetricsAccounting) {
  obs::MetricsRegistry registry;
  AdmissionConfig config;
  config.max_queue_per_tenant = 1;
  JobManager jobs(config);
  jobs.set_registry(&registry);

  ASSERT_TRUE(jobs.submit("a", "", tiny_stream()).admitted);
  ASSERT_FALSE(jobs.submit("a", "", tiny_stream()).admitted);
  ASSERT_TRUE(jobs.next_job().has_value());
  jobs.complete(1, obs::JsonValue::object(), queue_only(7.0));

  const obs::JsonValue stats = jobs.stats();
  EXPECT_EQ(stats.at("submitted").as_int(), 2);
  EXPECT_EQ(stats.at("admitted").as_int(), 1);
  EXPECT_EQ(stats.at("rejected").as_int(), 1);
  EXPECT_EQ(stats.at("completed").as_int(), 1);
  EXPECT_EQ(stats.at("queued").as_int(), 0);
  EXPECT_EQ(stats.at("tenants").at("a").at("admitted").as_int(), 1);
  EXPECT_EQ(stats.at("tenants").at("a").at("rejected").as_int(), 1);

  // The registry mirrors the same accounting.
  EXPECT_EQ(registry.counter("service.submitted").value(), 2u);
  EXPECT_EQ(registry.counter("service.admitted").value(), 1u);
  EXPECT_EQ(registry.counter("service.rejected").value(), 1u);
  EXPECT_EQ(registry.counter("service.completed").value(), 1u);
  EXPECT_DOUBLE_EQ(registry.gauge("service.queued").value(), 0.0);
}

TEST(JobManager, ConcurrentSubmitsKeepAccountingExact) {
  // Eight submitter threads race a dispatcher thread; whatever interleaving
  // happens, admitted + rejected == submitted and every admitted job reaches
  // a terminal state.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 40;
  AdmissionConfig config;
  config.max_queue_per_tenant = 8;  // tight: forces real rejections
  JobManager jobs(config);

  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&jobs, t] {
      const std::string tenant = "tenant-" + std::to_string(t % 4);
      for (int i = 0; i < kPerThread; ++i) {
        jobs.submit(tenant, "", tiny_stream(static_cast<std::uint64_t>(i)));
      }
    });
  }
  std::thread dispatcher([&jobs] {
    int drained_rounds = 0;
    while (drained_rounds < 100) {
      if (const auto id = jobs.next_job()) {
        (void)jobs.take_stream(*id);
        jobs.complete(*id, obs::JsonValue::object(), queue_only(0.0));
        drained_rounds = 0;
      } else {
        ++drained_rounds;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  });
  for (std::thread& t : submitters) t.join();
  dispatcher.join();
  // Finish anything still queued after the dispatcher gave up.
  while (const auto id = jobs.next_job()) {
    (void)jobs.take_stream(*id);
    jobs.complete(*id, obs::JsonValue::object(), queue_only(0.0));
  }

  const obs::JsonValue stats = jobs.stats();
  EXPECT_EQ(stats.at("submitted").as_int(), kThreads * kPerThread);
  EXPECT_EQ(stats.at("admitted").as_int() + stats.at("rejected").as_int(),
            stats.at("submitted").as_int());
  EXPECT_EQ(stats.at("completed").as_int(), stats.at("admitted").as_int());
  EXPECT_EQ(stats.at("queued").as_int(), 0);
  EXPECT_EQ(stats.at("running").as_int(), 0);
  EXPECT_TRUE(jobs.idle());
}

TEST(JobManager, JobIdsAreMonotoneFromOne) {
  JobManager jobs;
  for (std::uint64_t i = 1; i <= 5; ++i) {
    const SubmitOutcome outcome = jobs.submit("t", "", tiny_stream());
    ASSERT_TRUE(outcome.admitted);
    EXPECT_EQ(outcome.job_id, i);
  }
}

TEST(JobManager, StatusWithResultIsOneConsistentSnapshot) {
  JobManager jobs;
  ASSERT_TRUE(jobs.submit("alice", "job", tiny_stream()).admitted);
  EXPECT_FALSE(jobs.status_with_result(42).has_value());

  auto snap = jobs.status_with_result(1);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->status.state, JobState::kQueued);
  EXPECT_FALSE(snap->result.has_value());

  ASSERT_TRUE(jobs.next_job().has_value());
  obs::JsonValue result = obs::JsonValue::object();
  result.set("makespan_s", 0.25);
  jobs.complete(1, std::move(result), queue_only(1.0));

  snap = jobs.status_with_result(1);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->status.state, JobState::kDone);
  ASSERT_TRUE(snap->result.has_value());
  EXPECT_DOUBLE_EQ(snap->result->at("makespan_s").as_double(), 0.25);
}

TEST(JobManager, DispatchInfoCarriesTraceIdentityAndProvenance) {
  JobManager jobs;
  ASSERT_TRUE(
      jobs.submit("alice", "first", tiny_stream(), "t-abc-0").admitted);
  ASSERT_TRUE(jobs.submit("alice", "second", tiny_stream()).admitted);

  ASSERT_TRUE(jobs.next_job().has_value());
  const DispatchInfo first = jobs.dispatch_info(1);
  EXPECT_EQ(first.trace_id, "t-abc-0");
  EXPECT_EQ(first.tenant, "alice");
  EXPECT_EQ(first.name, "first");
  EXPECT_EQ(first.dispatch_seq, 1u);
  EXPECT_EQ(first.depth_at_submit, 0u);  // queue was empty at submit

  obs::JsonValue result = obs::JsonValue::object();
  jobs.complete(1, std::move(result), queue_only(1.0));
  ASSERT_TRUE(jobs.next_job().has_value());
  const DispatchInfo second = jobs.dispatch_info(2);
  EXPECT_TRUE(second.trace_id.empty());  // client sent no trace
  EXPECT_EQ(second.dispatch_seq, 2u);
  EXPECT_EQ(second.depth_at_submit, 1u);  // "first" was queued ahead of it
}

TEST(JobManager, CompletionTimingFeedsLatencyHistograms) {
  obs::MetricsRegistry registry;
  JobManager jobs;
  jobs.set_registry(&registry);
  ASSERT_TRUE(jobs.submit("alice", "job", tiny_stream()).admitted);
  ASSERT_TRUE(jobs.next_job().has_value());

  CompletionTiming timing;
  timing.queue_latency_ms = 12.0;
  timing.e2e_latency_ms = 120.0;
  timing.sim_makespan_ms = 500.0;
  jobs.complete(1, obs::JsonValue::object(), timing);

  const auto histogram_sum = [&registry](const std::string& name) {
    const obs::Histogram* h = registry.find_histogram(name);
    return h == nullptr ? -1.0 : h->sum();
  };
  EXPECT_DOUBLE_EQ(histogram_sum(obs::names::kServiceQueueLatencyMs), 12.0);
  EXPECT_DOUBLE_EQ(histogram_sum(obs::names::tenant_metric(
                       "alice", obs::names::kTenantQueueLatencyMs)),
                   12.0);
  EXPECT_DOUBLE_EQ(histogram_sum(obs::names::tenant_metric(
                       "alice", obs::names::kTenantE2eLatencyMs)),
                   120.0);
  EXPECT_DOUBLE_EQ(histogram_sum(obs::names::tenant_metric(
                       "alice", obs::names::kTenantJobSimMs)),
                   500.0);
}

TEST(JobManager, SloCountersJudgeE2eLatencyWhenConfigured) {
  AdmissionConfig config;
  config.slo_ms = 100.0;
  obs::MetricsRegistry registry;
  JobManager jobs(config);
  jobs.set_registry(&registry);

  const auto finish_with_e2e = [&jobs](std::uint64_t id, double e2e_ms) {
    ASSERT_TRUE(jobs.next_job().has_value());
    CompletionTiming timing;
    timing.e2e_latency_ms = e2e_ms;
    jobs.complete(id, obs::JsonValue::object(), timing);
  };
  ASSERT_TRUE(jobs.submit("alice", "fast", tiny_stream()).admitted);
  finish_with_e2e(1, 50.0);  // within SLO
  ASSERT_TRUE(jobs.submit("alice", "slow", tiny_stream()).admitted);
  finish_with_e2e(2, 250.0);  // miss
  ASSERT_TRUE(jobs.submit("alice", "edge", tiny_stream()).admitted);
  finish_with_e2e(3, 100.0);  // boundary counts as ok

  const obs::JsonValue stats = jobs.stats();
  const obs::JsonValue& alice = stats.at("tenants").at("alice");
  EXPECT_EQ(alice.at("slo_ok").as_int(), 2);
  EXPECT_EQ(alice.at("slo_miss").as_int(), 1);
  const obs::Counter* ok = registry.find_counter(
      obs::names::tenant_metric("alice", obs::names::kTenantSloOk));
  const obs::Counter* miss = registry.find_counter(
      obs::names::tenant_metric("alice", obs::names::kTenantSloMiss));
  ASSERT_NE(ok, nullptr);
  ASSERT_NE(miss, nullptr);
  EXPECT_EQ(ok->value(), 2u);
  EXPECT_EQ(miss->value(), 1u);
}

TEST(JobManager, HeldSubmitIsInvisibleUntilReleased) {
  // The server's write-ahead dispatch gate: a held admission is in the book
  // of record (queued, counted, deduped) but next_job() must not pick it —
  // or even skip past it to a later job of the same tenant — until the
  // admitted record went durable and release_job() clears the hold.
  JobManager jobs;
  const SubmitOutcome held = jobs.submit("alice", "wal", tiny_stream(), "",
                                         "tok-held", /*hold=*/true);
  ASSERT_TRUE(held.admitted);
  EXPECT_EQ(jobs.queued_total(), 1u);
  EXPECT_FALSE(jobs.next_job().has_value());

  // A second tenant's releasable job dispatches around the held one.
  const SubmitOutcome other =
      jobs.submit("bob", "free", tiny_stream(), "", "");
  ASSERT_TRUE(other.admitted);
  const auto first = jobs.next_job();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, other.job_id);
  EXPECT_FALSE(jobs.next_job().has_value());  // alice's is still held

  EXPECT_TRUE(jobs.release_job(held.job_id));
  const auto second = jobs.next_job();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, held.job_id);

  // Not QUEUED any more: a late release reports false.
  EXPECT_FALSE(jobs.release_job(held.job_id));
  EXPECT_FALSE(jobs.release_job(999));
}

TEST(JobManager, HeldSubmitRollsBackLikeAnyQueuedJob) {
  // A failed journal append cancels the held admission: the job leaves the
  // queue, the idempotency token is released, and a resubmit with the same
  // token admits a fresh job instead of answering duplicate.
  JobManager jobs;
  const SubmitOutcome held = jobs.submit("alice", "wal", tiny_stream(), "",
                                         "tok-roll", /*hold=*/true);
  ASSERT_TRUE(held.admitted);
  EXPECT_TRUE(jobs.cancel_queued_job(held.job_id));
  EXPECT_EQ(jobs.status(held.job_id)->state, JobState::kCancelled);
  EXPECT_FALSE(jobs.next_job().has_value());

  const SubmitOutcome retry = jobs.submit("alice", "wal", tiny_stream(), "",
                                          "tok-roll", /*hold=*/true);
  ASSERT_TRUE(retry.admitted);
  EXPECT_FALSE(retry.duplicate);
  EXPECT_NE(retry.job_id, held.job_id);
}

TEST(JobManager, SloCountersStayZeroWithoutAnSlo) {
  JobManager jobs;  // slo_ms defaults to 0 = disabled
  ASSERT_TRUE(jobs.submit("alice", "job", tiny_stream()).admitted);
  ASSERT_TRUE(jobs.next_job().has_value());
  CompletionTiming timing;
  timing.e2e_latency_ms = 1e9;  // would miss any real SLO
  jobs.complete(1, obs::JsonValue::object(), timing);
  const obs::JsonValue stats = jobs.stats();
  const obs::JsonValue& alice = stats.at("tenants").at("alice");
  EXPECT_EQ(alice.at("slo_ok").as_int(), 0);
  EXPECT_EQ(alice.at("slo_miss").as_int(), 0);
}

}  // namespace
}  // namespace micco::service
