#include "sched/reuse_bounds.hpp"

#include <gtest/gtest.h>

#include <set>

namespace micco {
namespace {

TEST(ReuseBounds, DefaultIsZeroTriple) {
  const ReuseBounds b;
  EXPECT_EQ(b[0], 0);
  EXPECT_EQ(b[1], 0);
  EXPECT_EQ(b[2], 0);
  EXPECT_EQ(b, ReuseBounds::naive());
}

TEST(ReuseBounds, ConstructionAndIndexing) {
  ReuseBounds b{1, 2, 3};
  EXPECT_EQ(b[0], 1);
  EXPECT_EQ(b[1], 2);
  EXPECT_EQ(b[2], 3);
  b[1] = 7;
  EXPECT_EQ(b[1], 7);
}

TEST(ReuseBounds, EqualityAndToString) {
  EXPECT_EQ((ReuseBounds{0, 2, 0}), (ReuseBounds{0, 2, 0}));
  EXPECT_NE((ReuseBounds{0, 2, 0}), (ReuseBounds{0, 2, 2}));
  EXPECT_EQ((ReuseBounds{0, 2, 0}).to_string(), "(0,2,0)");
}

TEST(Fig8Sweep, HasThirteenDistinctTriples) {
  const auto& sweep = fig8_bound_sweep();
  EXPECT_EQ(sweep.size(), 13u);
  std::set<std::string> unique;
  for (const ReuseBounds& b : sweep) unique.insert(b.to_string());
  EXPECT_EQ(unique.size(), 13u);
}

TEST(Fig8Sweep, ComponentsWithinPaperRange) {
  for (const ReuseBounds& b : fig8_bound_sweep()) {
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_GE(b[i], 0);
      EXPECT_LE(b[i], 2);
    }
  }
}

TEST(Fig8Sweep, IncludesZeroAndPaperOptima) {
  const auto& sweep = fig8_bound_sweep();
  const auto contains = [&](ReuseBounds b) {
    for (const ReuseBounds& s : sweep) {
      if (s == b) return true;
    }
    return false;
  };
  EXPECT_TRUE(contains(ReuseBounds{0, 0, 0}));
  EXPECT_TRUE(contains(ReuseBounds{0, 2, 0}));  // Fig. 8(a) best for Case 1
  EXPECT_TRUE(contains(ReuseBounds{0, 2, 2}));  // Fig. 8(b) best for Case 3
}

TEST(BoundGrid, EnumeratesFullCube) {
  const auto grid = bound_grid(2);
  EXPECT_EQ(grid.size(), 27u);
  std::set<std::string> unique;
  for (const ReuseBounds& b : grid) unique.insert(b.to_string());
  EXPECT_EQ(unique.size(), 27u);
}

TEST(BoundGrid, ZeroWidthIsSingleton) {
  const auto grid = bound_grid(0);
  ASSERT_EQ(grid.size(), 1u);
  EXPECT_EQ(grid[0], ReuseBounds::naive());
}

}  // namespace
}  // namespace micco
