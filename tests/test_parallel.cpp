// Parallel layer tests: pool semantics (every index exactly once, ordering,
// exceptions, nesting) and the determinism contract — tuner labels, forest
// predictions and trial statistics bit-identical at threads=1 vs threads=8
// and across repeated threads=8 runs. All suites here start with "Parallel"
// so ci.sh can run exactly this set under ThreadSanitizer.
#include "parallel/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "bench_common.hpp"
#include "core/tuner.hpp"
#include "ml/random_forest.hpp"

namespace micco {
namespace {

/// Restores the lane count on scope exit so one test's width never leaks
/// into another (the pool is process-global).
class ThreadGuard {
 public:
  explicit ThreadGuard(int threads) { parallel::set_threads(threads); }
  ~ThreadGuard() { parallel::set_threads(1); }
};

// -- pool semantics --------------------------------------------------------

TEST(ParallelFor, RunsEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 8}) {
    ThreadGuard guard(threads);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    parallel::parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " @" << threads;
    }
  }
}

TEST(ParallelFor, HandlesEmptyAndSingleItemLoops) {
  ThreadGuard guard(8);
  int calls = 0;
  parallel::parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel::parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelMap, ResultsLandInIndexOrder) {
  ThreadGuard guard(8);
  // Uneven per-item work so completion order scrambles under real threads;
  // the results must come back in index order anyway.
  const auto out = parallel::parallel_map(257, [](std::size_t i) {
    std::uint64_t x = i;
    for (std::size_t spin = 0; spin < (i % 7) * 1000; ++spin) {
      x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    }
    (void)x;
    return i * i;
  });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelMap, SupportsMoveOnlyResultTypes) {
  ThreadGuard guard(4);
  const auto out = parallel::parallel_map(
      16, [](std::size_t i) { return std::make_unique<std::size_t>(i); });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(*out[i], i);
}

TEST(ParallelFor, PropagatesExceptionsToCaller) {
  for (const int threads : {1, 8}) {
    ThreadGuard guard(threads);
    EXPECT_THROW(
        parallel::parallel_for(100,
                               [](std::size_t i) {
                                 if (i == 37) {
                                   throw std::runtime_error("item 37");
                                 }
                               }),
        std::runtime_error);
    // The pool must still be usable after a failed loop.
    std::atomic<int> ran{0};
    parallel::parallel_for(10, [&](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 10);
  }
}

TEST(ParallelFor, NestedLoopsCompleteWithoutDeadlock) {
  for (const int threads : {1, 2, 8}) {
    ThreadGuard guard(threads);
    constexpr std::size_t kOuter = 6;
    constexpr std::size_t kInner = 32;
    std::atomic<int> total{0};
    parallel::parallel_for(kOuter, [&](std::size_t) {
      parallel::parallel_for(kInner,
                             [&](std::size_t) { total.fetch_add(1); });
    });
    EXPECT_EQ(total.load(), static_cast<int>(kOuter * kInner));
  }
}

TEST(ParallelConfig, SetThreadsControlsLaneCount) {
  ThreadGuard guard(1);
  EXPECT_EQ(parallel::configured_threads(), 1);
  parallel::set_threads(6);
  EXPECT_EQ(parallel::configured_threads(), 6);
  parallel::set_threads(0);  // auto: at least one lane, whatever the host
  EXPECT_GE(parallel::configured_threads(), 1);
}

TEST(ParallelRng, ItemStreamsAreReproducibleAndDistinct) {
  Pcg32 a0 = parallel::item_rng(7, 0);
  Pcg32 a0_again = parallel::item_rng(7, 0);
  Pcg32 a1 = parallel::item_rng(7, 1);
  bool distinct = false;
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t v = a0();
    EXPECT_EQ(v, a0_again());
    if (v != a1()) distinct = true;
  }
  EXPECT_TRUE(distinct);
}

// -- determinism contract --------------------------------------------------

TunerConfig tiny_tuner() {
  TunerConfig c;
  c.samples = 4;
  c.vector_sizes = {8, 16};
  c.tensor_extents = {64};
  c.repeated_rates = {0.5, 1.0};
  c.num_vectors = 3;
  c.batch = 1;
  c.num_devices = 2;
  c.max_bound = 1;
  c.seeds_per_sample = 2;
  c.seed = 99;
  return c;
}

void expect_same_tuning(const TuningData& a, const TuningData& b) {
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].best_bounds.values, b.samples[i].best_bounds.values);
    // Bit-exact, not approximately equal: the parallel sweep must merge the
    // very same measurements the serial sweep produced.
    EXPECT_EQ(a.samples[i].best_gflops, b.samples[i].best_gflops);
    EXPECT_EQ(a.samples[i].worst_gflops, b.samples[i].worst_gflops);
  }
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].bounds.values, b.records[i].bounds.values);
    EXPECT_EQ(a.records[i].gflops, b.records[i].gflops);
  }
}

TEST(ParallelDeterminism, TunerLabelsBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard(1);
  const TuningData serial = generate_tuning_data(tiny_tuner());
  parallel::set_threads(8);
  const TuningData wide = generate_tuning_data(tiny_tuner());
  const TuningData wide_again = generate_tuning_data(tiny_tuner());
  expect_same_tuning(serial, wide);        // threads=1 vs threads=8
  expect_same_tuning(wide, wide_again);    // two threads=8 runs
}

ml::Dataset forest_data(int n, std::uint64_t seed) {
  ml::Dataset d(3);
  Pcg32 rng(seed);
  for (int i = 0; i < n; ++i) {
    const double a = rng.uniform_real(0, 1);
    const double b = rng.uniform_real(0, 1);
    const double c = rng.uniform_real(0, 1);
    const double features[3] = {a, b, c};
    d.add(features, (a > 0.5 ? 2.0 : 0.0) + b * c);
  }
  return d;
}

TEST(ParallelDeterminism, ForestPredictionsBitIdenticalAcrossThreadCounts) {
  const ml::Dataset train = forest_data(160, 5);
  const ml::Dataset probe = forest_data(40, 6);
  ml::ForestConfig cfg;
  cfg.n_trees = 24;

  ThreadGuard guard(1);
  ml::RandomForest serial(cfg);
  serial.fit(train);
  const std::vector<double> want = serial.predict_all(probe);

  parallel::set_threads(8);
  for (int run = 0; run < 2; ++run) {
    ml::RandomForest wide(cfg);
    wide.fit(train);
    const std::vector<double> got = wide.predict_all(probe);
    ASSERT_EQ(want.size(), got.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(want[i], got[i]) << "probe " << i << " run " << run;
    }
  }
}

std::vector<double> trial_stats(std::int64_t trials) {
  // Each trial measures an independent stream (its own seed) — exactly the
  // repeated-measurement shape the bench harnesses fan out.
  return bench::run_trials(trials, [&](std::size_t t) {
    SyntheticConfig cfg;
    cfg.num_vectors = 2;
    cfg.vector_size = 8;
    cfg.tensor_extent = 64;
    cfg.batch = 1;
    cfg.seed = 100 + t;
    ClusterConfig cluster;
    cluster.num_devices = 2;
    return measure_gflops(generate_synthetic(cfg), ReuseBounds{1, 1, 1},
                          cluster);
  });
}

TEST(ParallelDeterminism, BenchTrialStatsBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard(1);
  const std::vector<double> serial = trial_stats(12);
  parallel::set_threads(8);
  const std::vector<double> wide = trial_stats(12);
  const std::vector<double> wide_again = trial_stats(12);
  EXPECT_EQ(serial, wide);
  EXPECT_EQ(wide, wide_again);
  EXPECT_EQ(stats::mean(serial), stats::mean(wide));
}

}  // namespace
}  // namespace micco
