// Tests for micco-lint, the determinism & concurrency static-analysis gate
// (tools/micco_lint, DESIGN.md §5e). The fixtures under tests/lint_corpus/
// are scanned, never compiled: each .bad file must fire its rule, each
// .good file must be clean, and the suppression fixtures pin the directive
// grammar. MiccoLintSelf is the gate's gate: the real tree must lint clean,
// so deleting any in-tree suppression or re-introducing a banned pattern
// fails the test suite, not just ci.sh.
#include "micco_lint/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace micco::lint {
namespace {

std::string corpus(const std::string& name) {
  return std::string(MICCO_LINT_CORPUS_DIR) + "/" + name;
}

LintResult lint_fixture(const std::string& name) {
  return lint_paths({corpus(name)});
}

int count_rule(const LintResult& result, const std::string& rule) {
  int count = 0;
  for (const Finding& finding : result.findings) {
    if (finding.rule == rule) ++count;
  }
  return count;
}

// ---------------------------------------------------------------------------

TEST(MiccoLintCatalog, RulesHaveUniqueExitCodesAndRoundTrip) {
  std::set<std::string> names;
  std::set<int> codes;
  for (const RuleInfo& rule : rule_catalog()) {
    EXPECT_TRUE(names.insert(rule.name).second) << rule.name;
    EXPECT_TRUE(codes.insert(rule.exit_code).second) << rule.exit_code;
    EXPECT_GE(rule.exit_code, 10) << "rule codes must not collide with "
                                     "0 (clean) / 1 (I/O) / 2 (usage)";
    EXPECT_TRUE(known_rule(rule.name));
    EXPECT_FALSE(rule.description.empty());
  }
  EXPECT_FALSE(known_rule("not-a-rule"));
  EXPECT_FALSE(known_rule(""));
}

TEST(MiccoLintRules, DetRngBadFiresOnEveryBannedSource) {
  const LintResult result = lint_fixture("det_rng.bad.cpp");
  EXPECT_EQ(result.exit_code, 10);
  // random_device, srand, time, rand, mt19937, system_clock.
  EXPECT_EQ(count_rule(result, "det-rng"), 6);
}

TEST(MiccoLintRules, DetRngGoodIsClean) {
  const LintResult result = lint_fixture("det_rng.good.cpp");
  EXPECT_EQ(result.exit_code, 0) << format_text(result);
}

TEST(MiccoLintRules, UnorderedIterBadFiresBothForms) {
  const LintResult result = lint_fixture("unordered_iter.bad.cpp");
  EXPECT_EQ(result.exit_code, 11);
  EXPECT_EQ(count_rule(result, "det-unordered-iter"), 2);
  // Both forms name the container and the header that put the TU in scope.
  for (const Finding& finding : result.findings) {
    EXPECT_NE(finding.message.find("'weights'"), std::string::npos);
    EXPECT_NE(finding.message.find("obs/events.hpp"), std::string::npos);
  }
}

TEST(MiccoLintRules, UnorderedIterSortedEmissionIsClean) {
  const LintResult result = lint_fixture("unordered_iter.good.cpp");
  EXPECT_EQ(result.exit_code, 0) << format_text(result);
}

TEST(MiccoLintRules, UnorderedIterOutsideOutputScopeIsClean) {
  const LintResult result = lint_fixture("unordered_iter.unscoped.good.cpp");
  EXPECT_EQ(result.exit_code, 0) << format_text(result);
}

TEST(MiccoLintRules, RawNewBadFiresPerExpression) {
  const LintResult result = lint_fixture("raw_new.bad.cpp");
  EXPECT_EQ(result.exit_code, 12);
  EXPECT_EQ(count_rule(result, "no-raw-new"), 3);
}

TEST(MiccoLintRules, DeletedSpecialMembersAreClean) {
  const LintResult result = lint_fixture("raw_new.good.cpp");
  EXPECT_EQ(result.exit_code, 0) << format_text(result);
}

TEST(MiccoLintRules, StdoutBadFiresOnPrintfAndCout) {
  const LintResult result = lint_fixture("stdout.bad.cpp");
  EXPECT_EQ(result.exit_code, 13);
  EXPECT_EQ(count_rule(result, "no-stdout"), 2);
}

TEST(MiccoLintRules, PragmaOnce) {
  EXPECT_EQ(lint_fixture("pragma_once.bad.hpp").exit_code, 14);
  EXPECT_EQ(lint_fixture("pragma_once.good.hpp").exit_code, 0);
}

TEST(MiccoLintRules, ThreadAnnotationBadFiresOnRawSyncTypes) {
  const LintResult result = lint_fixture("thread_annotation.bad.cpp");
  EXPECT_EQ(result.exit_code, 15);
  // mutex member, condition_variable, unannotated atomic, lock_guard +
  // its std::mutex template argument.
  EXPECT_EQ(count_rule(result, "thread-annotation"), 5);
}

TEST(MiccoLintRules, AnnotatedWrappersAreClean) {
  const LintResult result = lint_fixture("thread_annotation.good.cpp");
  EXPECT_EQ(result.exit_code, 0) << format_text(result);
}

TEST(MiccoLintRules, MetricNameLiteralFiresPerDottedLiteral) {
  const LintResult result = lint_fixture("metric_name.bad.cpp");
  EXPECT_EQ(result.exit_code, 17);
  // One per reserved root plus the concatenated-prefix piece.
  EXPECT_EQ(count_rule(result, "metric-name-literal"), 4);
  for (const Finding& finding : result.findings) {
    EXPECT_NE(finding.message.find("obs/names.hpp"), std::string::npos);
  }
}

TEST(MiccoLintRules, MetricNameLookalikesAndSuppressionsAreClean) {
  const LintResult result = lint_fixture("metric_name.good.cpp");
  EXPECT_EQ(result.exit_code, 0) << format_text(result);
}

TEST(MiccoLintRules, RawDurabilityIoFiresOnGlobalWriteAndFsync) {
  const LintResult result = lint_fixture("durability_io.bad.cpp");
  EXPECT_EQ(result.exit_code, 18);
  EXPECT_EQ(count_rule(result, "raw-durability-io"), 2);
  for (const Finding& finding : result.findings) {
    EXPECT_NE(finding.message.find("service/journal.cpp"), std::string::npos);
  }
}

TEST(MiccoLintRules, DurabilityLookalikesAndSuppressionsAreClean) {
  const LintResult result = lint_fixture("durability_io.good.cpp");
  EXPECT_EQ(result.exit_code, 0) << format_text(result);
}

TEST(MiccoLintRules, FindingsAreSortedByFileLineRule) {
  const LintResult result = lint_paths(
      {corpus("det_rng.bad.cpp"), corpus("stdout.bad.cpp")});
  ASSERT_GT(result.findings.size(), 1u);
  const auto ordered = [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule, a.message) <=
           std::tie(b.file, b.line, b.rule, b.message);
  };
  for (std::size_t i = 1; i < result.findings.size(); ++i) {
    EXPECT_TRUE(ordered(result.findings[i - 1], result.findings[i]));
  }
  // Exit code is the lowest fired rule code: det-rng (10) < no-stdout (13).
  EXPECT_EQ(result.exit_code, 10);
}

// ---------------------------------------------------------------------------

TEST(MiccoLintSuppression, BothPlacementsSilenceTheFinding) {
  const LintResult result = lint_fixture("suppression.ok.cpp");
  EXPECT_EQ(result.exit_code, 0) << format_text(result);
}

TEST(MiccoLintSuppression, MalformedDirectivesAreFindingsAndSuppressNothing) {
  const LintResult result = lint_fixture("suppression.bad.cpp");
  EXPECT_EQ(count_rule(result, "bad-suppression"), 2);
  // The printf findings survive because neither directive is valid.
  EXPECT_EQ(count_rule(result, "no-stdout"), 2);
  // no-stdout (13) < bad-suppression (16).
  EXPECT_EQ(result.exit_code, 13);
}

TEST(MiccoLintSuppression, IoErrorOnMissingPath) {
  const LintResult result = lint_paths({corpus("does_not_exist.cpp")});
  EXPECT_EQ(result.exit_code, 1);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, "io-error");
}

// ---------------------------------------------------------------------------

TEST(MiccoLintJson, ReportParsesAndMirrorsTheFindings) {
  const LintResult result = lint_fixture("stdout.bad.cpp");
  std::string error;
  const auto parsed = obs::parse_json(format_json(result), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->at("schema_version").as_int(), 1);
  EXPECT_EQ(parsed->at("files_scanned").as_int(), 1);
  EXPECT_FALSE(parsed->at("clean").as_bool());
  EXPECT_EQ(parsed->at("exit_code").as_int(), 13);
  EXPECT_EQ(parsed->at("counts").at("no-stdout").as_int(), 2);
  const auto& findings = parsed->at("findings").items();
  ASSERT_EQ(findings.size(), 2u);
  for (const auto& finding : findings) {
    EXPECT_EQ(finding.at("rule").as_string(), "no-stdout");
    EXPECT_NE(finding.at("file").as_string().find("stdout.bad.cpp"),
              std::string::npos);
    EXPECT_GT(finding.at("line").as_int(), 0);
    EXPECT_FALSE(finding.at("message").as_string().empty());
  }
}

TEST(MiccoLintJson, CleanRunReportsClean) {
  const LintResult result = lint_fixture("pragma_once.good.hpp");
  const auto parsed = obs::parse_json(format_json(result));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->at("clean").as_bool());
  EXPECT_EQ(parsed->at("exit_code").as_int(), 0);
  EXPECT_TRUE(parsed->at("findings").items().empty());
}

TEST(MiccoLintJson, TextFormatNamesRuleAndLocation) {
  const LintResult result = lint_fixture("pragma_once.bad.hpp");
  const std::string text = format_text(result);
  EXPECT_NE(text.find("pragma_once.bad.hpp:1: [pragma-once]"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("exit 14"), std::string::npos) << text;
}

// ---------------------------------------------------------------------------

TEST(MiccoLintSelf, TreeLintsClean) {
  // The acceptance gate: src/, tools/ and bench/ must be clean. A deleted
  // suppression or a re-introduced banned pattern fails here with the full
  // finding list.
  const std::string root = MICCO_SOURCE_DIR;
  const LintResult result =
      lint_paths({root + "/src", root + "/tools", root + "/bench"});
  EXPECT_GT(result.files_scanned, 100u);
  EXPECT_EQ(result.exit_code, 0) << format_text(result);
}

}  // namespace
}  // namespace micco::lint
