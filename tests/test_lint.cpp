// Tests for micco-lint, the determinism & concurrency static-analysis gate
// (tools/micco_lint, DESIGN.md §5e). The fixtures under tests/lint_corpus/
// are scanned, never compiled: each .bad file must fire its rule, each
// .good file must be clean, and the suppression fixtures pin the directive
// grammar. MiccoLintSelf is the gate's gate: the real tree must lint clean,
// so deleting any in-tree suppression or re-introducing a banned pattern
// fails the test suite, not just ci.sh.
#include "micco_lint/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace micco::lint {
namespace {

std::string corpus(const std::string& name) {
  return std::string(MICCO_LINT_CORPUS_DIR) + "/" + name;
}

LintResult lint_fixture(const std::string& name) {
  return lint_paths({corpus(name)});
}

int count_rule(const LintResult& result, const std::string& rule) {
  int count = 0;
  for (const Finding& finding : result.findings) {
    if (finding.rule == rule) ++count;
  }
  return count;
}

// ---------------------------------------------------------------------------

TEST(MiccoLintCatalog, RulesHaveUniqueExitCodesAndRoundTrip) {
  std::set<std::string> names;
  std::set<int> codes;
  for (const RuleInfo& rule : rule_catalog()) {
    EXPECT_TRUE(names.insert(rule.name).second) << rule.name;
    EXPECT_TRUE(codes.insert(rule.exit_code).second) << rule.exit_code;
    EXPECT_GE(rule.exit_code, 10) << "rule codes must not collide with "
                                     "0 (clean) / 1 (I/O) / 2 (usage)";
    EXPECT_TRUE(known_rule(rule.name));
    EXPECT_FALSE(rule.description.empty());
  }
  EXPECT_FALSE(known_rule("not-a-rule"));
  EXPECT_FALSE(known_rule(""));
}

TEST(MiccoLintRules, DetRngBadFiresOnEveryBannedSource) {
  const LintResult result = lint_fixture("det_rng.bad.cpp");
  EXPECT_EQ(result.exit_code, 10);
  // random_device, srand, time, rand, mt19937, system_clock.
  EXPECT_EQ(count_rule(result, "det-rng"), 6);
}

TEST(MiccoLintRules, DetRngGoodIsClean) {
  const LintResult result = lint_fixture("det_rng.good.cpp");
  EXPECT_EQ(result.exit_code, 0) << format_text(result);
}

TEST(MiccoLintRules, UnorderedIterBadFiresBothForms) {
  const LintResult result = lint_fixture("unordered_iter.bad.cpp");
  EXPECT_EQ(result.exit_code, 11);
  EXPECT_EQ(count_rule(result, "det-unordered-iter"), 2);
  // Both forms name the container and the header that put the TU in scope.
  for (const Finding& finding : result.findings) {
    EXPECT_NE(finding.message.find("'weights'"), std::string::npos);
    EXPECT_NE(finding.message.find("obs/events.hpp"), std::string::npos);
  }
}

TEST(MiccoLintRules, UnorderedIterSortedEmissionIsClean) {
  const LintResult result = lint_fixture("unordered_iter.good.cpp");
  EXPECT_EQ(result.exit_code, 0) << format_text(result);
}

TEST(MiccoLintRules, UnorderedIterOutsideOutputScopeIsClean) {
  const LintResult result = lint_fixture("unordered_iter.unscoped.good.cpp");
  EXPECT_EQ(result.exit_code, 0) << format_text(result);
}

TEST(MiccoLintRules, RawNewBadFiresPerExpression) {
  const LintResult result = lint_fixture("raw_new.bad.cpp");
  EXPECT_EQ(result.exit_code, 12);
  EXPECT_EQ(count_rule(result, "no-raw-new"), 3);
}

TEST(MiccoLintRules, DeletedSpecialMembersAreClean) {
  const LintResult result = lint_fixture("raw_new.good.cpp");
  EXPECT_EQ(result.exit_code, 0) << format_text(result);
}

TEST(MiccoLintRules, StdoutBadFiresOnPrintfAndCout) {
  const LintResult result = lint_fixture("stdout.bad.cpp");
  EXPECT_EQ(result.exit_code, 13);
  EXPECT_EQ(count_rule(result, "no-stdout"), 2);
}

TEST(MiccoLintRules, PragmaOnce) {
  EXPECT_EQ(lint_fixture("pragma_once.bad.hpp").exit_code, 14);
  EXPECT_EQ(lint_fixture("pragma_once.good.hpp").exit_code, 0);
}

TEST(MiccoLintRules, ThreadAnnotationBadFiresOnRawSyncTypes) {
  const LintResult result = lint_fixture("thread_annotation.bad.cpp");
  EXPECT_EQ(result.exit_code, 15);
  // mutex member, condition_variable, unannotated atomic, lock_guard +
  // its std::mutex template argument.
  EXPECT_EQ(count_rule(result, "thread-annotation"), 5);
}

TEST(MiccoLintRules, AnnotatedWrappersAreClean) {
  const LintResult result = lint_fixture("thread_annotation.good.cpp");
  EXPECT_EQ(result.exit_code, 0) << format_text(result);
}

TEST(MiccoLintRules, MetricNameLiteralFiresPerDottedLiteral) {
  const LintResult result = lint_fixture("metric_name.bad.cpp");
  EXPECT_EQ(result.exit_code, 17);
  // One per reserved root plus the concatenated-prefix piece.
  EXPECT_EQ(count_rule(result, "metric-name-literal"), 4);
  for (const Finding& finding : result.findings) {
    EXPECT_NE(finding.message.find("obs/names.hpp"), std::string::npos);
  }
}

TEST(MiccoLintRules, MetricNameLookalikesAndSuppressionsAreClean) {
  const LintResult result = lint_fixture("metric_name.good.cpp");
  EXPECT_EQ(result.exit_code, 0) << format_text(result);
}

TEST(MiccoLintRules, RawDurabilityIoFiresOnGlobalWriteAndFsync) {
  const LintResult result = lint_fixture("durability_io.bad.cpp");
  EXPECT_EQ(result.exit_code, 18);
  EXPECT_EQ(count_rule(result, "raw-durability-io"), 2);
  for (const Finding& finding : result.findings) {
    EXPECT_NE(finding.message.find("service/journal.cpp"), std::string::npos);
  }
}

TEST(MiccoLintRules, DurabilityLookalikesAndSuppressionsAreClean) {
  const LintResult result = lint_fixture("durability_io.good.cpp");
  EXPECT_EQ(result.exit_code, 0) << format_text(result);
}

TEST(MiccoLintRules, LockOrderCycleFiresWithWitnessPath) {
  const LintResult result = lint_fixture("lock_cycle.bad.cpp");
  EXPECT_EQ(result.exit_code, 19);
  ASSERT_EQ(count_rule(result, "lock-order-cycle"), 1);
  // The finding spells out the whole cycle, rotated to a canonical start.
  EXPECT_NE(result.findings[0].message.find(
                "Alpha::mutex_ -> Beta::mutex_ -> Alpha::mutex_"),
            std::string::npos)
      << result.findings[0].message;
  // Both directions were extracted as edges of the lock graph.
  EXPECT_EQ(result.lock_graph.nodes.size(), 2u);
  EXPECT_EQ(result.lock_graph.edges.size(), 2u);
}

TEST(MiccoLintRules, ConsistentLockNestingIsCleanWithOneEdge) {
  const LintResult result = lint_fixture("lock_cycle.good.cpp");
  EXPECT_EQ(result.exit_code, 0) << format_text(result);
  // Both call sites nest the same way, so the deduplicated graph keeps a
  // single Alpha-before-Beta edge (first witness wins) and never the
  // reverse direction.
  ASSERT_EQ(result.lock_graph.edges.size(), 1u);
  EXPECT_EQ(result.lock_graph.edges[0].from, "Alpha::mutex_");
  EXPECT_EQ(result.lock_graph.edges[0].to, "Beta::mutex_");
}

TEST(MiccoLintRules, BlockingUnderLockFiresDirectAndTransitive) {
  const LintResult result = lint_fixture("blocking_lock.bad.cpp");
  EXPECT_EQ(result.exit_code, 20);
  ASSERT_EQ(count_rule(result, "blocking-under-lock"), 2);
  // One finding for the raw primitive, one naming the call chain that
  // reaches it.
  EXPECT_NE(result.findings[0].message.find("::send"), std::string::npos);
  EXPECT_NE(result.findings[1].message.find("drain -> ::send"),
            std::string::npos);
  for (const Finding& finding : result.findings) {
    EXPECT_NE(finding.message.find("Pusher::mutex_"), std::string::npos);
  }
}

TEST(MiccoLintRules, BlockingOutsideTheCriticalSectionIsClean) {
  const LintResult result = lint_fixture("blocking_lock.good.cpp");
  EXPECT_EQ(result.exit_code, 0) << format_text(result);
}

TEST(MiccoLintRules, WalReleaseBeforeDurableAppendFires) {
  const LintResult result = lint_fixture("wal_release.bad.cpp");
  EXPECT_EQ(result.exit_code, 21);
  ASSERT_EQ(count_rule(result, "wal-release-before-durable"), 1);
  EXPECT_NE(result.findings[0].message.find("Admissions::admit"),
            std::string::npos);
}

TEST(MiccoLintRules, WalAppendDominatingReleaseIsClean) {
  const LintResult result = lint_fixture("wal_release.good.cpp");
  EXPECT_EQ(result.exit_code, 0) << format_text(result);
}

TEST(MiccoLintRules, FindingsAreSortedByFileLineRule) {
  const LintResult result = lint_paths(
      {corpus("det_rng.bad.cpp"), corpus("stdout.bad.cpp")});
  ASSERT_GT(result.findings.size(), 1u);
  const auto ordered = [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule, a.message) <=
           std::tie(b.file, b.line, b.rule, b.message);
  };
  for (std::size_t i = 1; i < result.findings.size(); ++i) {
    EXPECT_TRUE(ordered(result.findings[i - 1], result.findings[i]));
  }
  // Exit code is the lowest fired rule code: det-rng (10) < no-stdout (13).
  EXPECT_EQ(result.exit_code, 10);
}

// ---------------------------------------------------------------------------

TEST(MiccoLintSuppression, BothPlacementsSilenceTheFinding) {
  const LintResult result = lint_fixture("suppression.ok.cpp");
  EXPECT_EQ(result.exit_code, 0) << format_text(result);
}

TEST(MiccoLintSuppression, MalformedDirectivesAreFindingsAndSuppressNothing) {
  const LintResult result = lint_fixture("suppression.bad.cpp");
  EXPECT_EQ(count_rule(result, "bad-suppression"), 2);
  // The printf findings survive because neither directive is valid.
  EXPECT_EQ(count_rule(result, "no-stdout"), 2);
  // no-stdout (13) < bad-suppression (16).
  EXPECT_EQ(result.exit_code, 13);
}

TEST(MiccoLintSuppression, StaleDirectiveIsFlaggedInTheReport) {
  const LintResult result = lint_fixture("suppression.stale.cpp");
  // Normal mode stays clean — a stale allow() hides nothing today — but
  // the report entry carries the stale bit that --suppressions exits on.
  EXPECT_EQ(result.exit_code, 0) << format_text(result);
  ASSERT_EQ(result.suppressions.size(), 1u);
  EXPECT_TRUE(result.suppressions[0].stale);
  ASSERT_EQ(result.suppressions[0].rules.size(), 1u);
  EXPECT_EQ(result.suppressions[0].rules[0], "no-stdout");
  EXPECT_NE(result.suppressions[0].reason.find("once covered"),
            std::string::npos);
}

TEST(MiccoLintSuppression, LiveDirectivesAreNotStale) {
  const LintResult result = lint_fixture("suppression.ok.cpp");
  EXPECT_EQ(result.exit_code, 0) << format_text(result);
  ASSERT_FALSE(result.suppressions.empty());
  for (const SuppressionReportEntry& entry : result.suppressions) {
    EXPECT_FALSE(entry.stale) << entry.file << ":" << entry.line;
  }
}

TEST(MiccoLintSuppression, ConcurrencyFindingsAreSuppressible) {
  // The in-tree journal allow() sites depend on this: a directive on the
  // line above a blocking call must silence blocking-under-lock.
  const LintResult result = lint_fixture("blocking_lock.allowed.good.cpp");
  EXPECT_EQ(result.exit_code, 0) << format_text(result);
  ASSERT_EQ(result.suppressions.size(), 1u);
  EXPECT_FALSE(result.suppressions[0].stale);
}

TEST(MiccoLintSuppression, IoErrorOnMissingPath) {
  const LintResult result = lint_paths({corpus("does_not_exist.cpp")});
  EXPECT_EQ(result.exit_code, 1);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, "io-error");
}

// ---------------------------------------------------------------------------

TEST(MiccoLintJson, ReportParsesAndMirrorsTheFindings) {
  const LintResult result = lint_fixture("stdout.bad.cpp");
  std::string error;
  const auto parsed = obs::parse_json(format_json(result), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->at("schema_version").as_int(), 2);
  EXPECT_EQ(parsed->at("files_scanned").as_int(), 1);
  EXPECT_FALSE(parsed->at("clean").as_bool());
  EXPECT_EQ(parsed->at("exit_code").as_int(), 13);
  EXPECT_EQ(parsed->at("counts").at("no-stdout").as_int(), 2);
  const auto& findings = parsed->at("findings").items();
  ASSERT_EQ(findings.size(), 2u);
  for (const auto& finding : findings) {
    EXPECT_EQ(finding.at("rule").as_string(), "no-stdout");
    EXPECT_NE(finding.at("file").as_string().find("stdout.bad.cpp"),
              std::string::npos);
    EXPECT_GT(finding.at("line").as_int(), 0);
    EXPECT_FALSE(finding.at("message").as_string().empty());
  }
  // Schema v2 additions: lock-graph size and suppression totals.
  EXPECT_EQ(parsed->at("lock_graph").at("nodes").as_int(), 0);
  EXPECT_EQ(parsed->at("lock_graph").at("edges").as_int(), 0);
  EXPECT_EQ(parsed->at("suppressions").at("total").as_int(), 0);
  EXPECT_EQ(parsed->at("suppressions").at("stale").as_int(), 0);
}

TEST(MiccoLintJson, LockGraphExportRoundTrips) {
  const LintResult result = lint_fixture("lock_cycle.good.cpp");
  std::string error;
  const auto parsed = obs::parse_json(lock_graph_json(result.lock_graph),
                                      &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->at("schema_version").as_int(), 1);
  ASSERT_EQ(parsed->at("nodes").items().size(), 2u);
  const auto& edges = parsed->at("edges").items();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].at("from").as_string(), "Alpha::mutex_");
  EXPECT_EQ(edges[0].at("to").as_string(), "Beta::mutex_");
  EXPECT_NE(edges[0].at("file").as_string().find("lock_cycle.good.cpp"),
            std::string::npos);
  EXPECT_GT(edges[0].at("line").as_int(), 0);
  // The DOT flavour names the same nodes and the edge.
  const std::string dot = lock_graph_dot(result.lock_graph);
  EXPECT_NE(dot.find("digraph"), std::string::npos) << dot;
  EXPECT_NE(dot.find("\"Alpha::mutex_\" -> \"Beta::mutex_\""),
            std::string::npos)
      << dot;
}

TEST(MiccoLintJson, CleanRunReportsClean) {
  const LintResult result = lint_fixture("pragma_once.good.hpp");
  const auto parsed = obs::parse_json(format_json(result));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->at("clean").as_bool());
  EXPECT_EQ(parsed->at("exit_code").as_int(), 0);
  EXPECT_TRUE(parsed->at("findings").items().empty());
}

TEST(MiccoLintJson, TextFormatNamesRuleAndLocation) {
  const LintResult result = lint_fixture("pragma_once.bad.hpp");
  const std::string text = format_text(result);
  EXPECT_NE(text.find("pragma_once.bad.hpp:1: [pragma-once]"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("exit 14"), std::string::npos) << text;
}

// ---------------------------------------------------------------------------

TEST(MiccoLintSelf, TreeLintsClean) {
  // The acceptance gate: src/, tools/ and bench/ must be clean. A deleted
  // suppression or a re-introduced banned pattern fails here with the full
  // finding list.
  const std::string root = MICCO_SOURCE_DIR;
  const LintResult result =
      lint_paths({root + "/src", root + "/tools", root + "/bench"});
  EXPECT_GT(result.files_scanned, 100u);
  EXPECT_EQ(result.exit_code, 0) << format_text(result);
}

}  // namespace
}  // namespace micco::lint
