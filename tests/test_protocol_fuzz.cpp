// Protocol fuzzing (deterministic, seeded): the NDJSON framing and request
// parsing layers, and a live daemon on a Unix socket, are fed mutated
// byte streams — random garbage lines, bit-flipped valid frames, truncated
// frames, oversized lines and interleaved partial writes. The contract
// under fuzz: every complete frame gets a structured JSON reply ({"ok":
// false, "code": ...} for defects), the connection survives whatever can be
// survived, and nothing ever aborts. Runs under ASan in CI.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "obs/json.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "workload/serialize.hpp"
#include "workload/synthetic.hpp"

namespace micco::service {
namespace {

std::string test_socket_path(const std::string& tag) {
  const std::string path =
      "/tmp/micco_fuzz_" + std::to_string(::getpid()) + "_" + tag + ".sock";
  ::unlink(path.c_str());
  return path;
}

std::string workload_text(std::uint64_t seed) {
  SyntheticConfig cfg;
  cfg.num_vectors = 1;
  cfg.vector_size = 8;
  cfg.seed = seed;
  std::ostringstream out;
  save_stream(generate_synthetic(cfg), out);
  return out.str();
}

/// Runs serve() on a background thread once start() succeeded.
class ServeSession {
 public:
  explicit ServeSession(ServerConfig config) : server_(std::move(config)) {}

  ~ServeSession() {
    if (thread_.joinable()) {
      server_.request_shutdown();
      thread_.join();
    }
  }

  bool begin(std::string* error) {
    if (!server_.start(error)) return false;
    thread_ = std::thread([this] { exit_code_ = server_.serve(); });
    return true;
  }

  int join() {
    thread_.join();
    return exit_code_;
  }

  Server& server() { return server_; }

 private:
  Server server_;
  std::thread thread_;
  int exit_code_ = -1;
};

/// A pool of valid request frames to mutate.
std::vector<std::string> valid_frames() {
  return {
      encode_frame(make_submit_request("alice", "j", workload_text(3),
                                       "t-1-0", "tok")),
      encode_frame(make_job_request(MessageType::kStatus, 1)),
      encode_frame(make_job_request(MessageType::kResult, 2)),
      encode_frame(make_plain_request(MessageType::kStats)),
      encode_frame(make_plain_request(MessageType::kMetrics)),
  };
}

/// One random line of printable-ish garbage (no '\n', so it is one frame).
std::string garbage_line(Pcg32& rng) {
  const std::size_t len = 1 + rng.uniform_below(200);
  std::string line;
  line.reserve(len + 1);
  for (std::size_t i = 0; i < len; ++i) {
    char c = static_cast<char>(rng.uniform_below(256));
    if (c == '\n') c = ' ';
    line += c;
  }
  line += '\n';
  return line;
}

// -- offline: FrameReader + parse_request -----------------------------------

TEST(ProtocolFuzz, ParserNeverAbortsOnMutatedFrames) {
  Pcg32 rng(0xF00D);
  const std::vector<std::string> frames = valid_frames();
  for (int round = 0; round < 500; ++round) {
    std::string frame = frames[rng.uniform_below(
        static_cast<std::uint32_t>(frames.size()))];
    switch (rng.uniform_below(3)) {
      case 0: {  // bit flip
        const std::size_t i = rng.uniform_below(
            static_cast<std::uint32_t>(frame.size()));
        frame[i] = static_cast<char>(
            static_cast<unsigned char>(frame[i]) ^
            (1u << rng.uniform_below(8u)));
        break;
      }
      case 1:  // truncate (and re-terminate, so it is still one line)
        frame = frame.substr(
            0, rng.uniform_below(static_cast<std::uint32_t>(frame.size())));
        frame += '\n';
        break;
      default:  // raw garbage
        frame = garbage_line(rng);
        break;
    }

    FrameReader reader;
    // Feed in random-sized chunks — partial delivery must not change the
    // outcome.
    std::size_t fed = 0;
    while (fed < frame.size()) {
      const std::size_t n =
          1 + rng.uniform_below(static_cast<std::uint32_t>(frame.size()));
      const std::size_t take = std::min(n, frame.size() - fed);
      reader.feed(std::string_view(frame).substr(fed, take));
      fed += take;
    }
    while (const std::optional<std::string> line = reader.next_frame()) {
      std::string parse_error;
      const std::optional<obs::JsonValue> doc =
          obs::parse_json(*line, &parse_error);
      if (!doc.has_value()) continue;  // the daemon's bad_frame reply path
      obs::JsonValue error_reply;
      const std::optional<Request> request = parse_request(*doc, &error_reply);
      if (!request.has_value()) {
        // The defect surfaced as a structured reply, never an abort.
        ASSERT_FALSE(error_reply.at("ok").as_bool());
        ASSERT_FALSE(error_reply.at("code").as_string().empty());
      }
    }
  }
}

TEST(ProtocolFuzz, OversizedLinesAreDroppedNotBuffered) {
  FrameReader reader(64);
  Pcg32 rng(0xBEEF);
  std::string huge(10000, 'x');
  for (char& c : huge) c = static_cast<char>('a' + rng.uniform_below(26));
  reader.feed(huge);
  reader.feed("\n");
  reader.feed(encode_frame(make_plain_request(MessageType::kStats)));

  bool oversized = false;
  const std::optional<std::string> first = reader.next_frame(&oversized);
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(oversized);  // the huge line was dropped and flagged
  // The frame after the dropped one is intact.
  std::string parse_error;
  const std::optional<obs::JsonValue> doc =
      obs::parse_json(*first, &parse_error);
  ASSERT_TRUE(doc.has_value()) << parse_error;
  obs::JsonValue error_reply;
  const std::optional<Request> request = parse_request(*doc, &error_reply);
  ASSERT_TRUE(request.has_value()) << error_reply.dump();
  EXPECT_EQ(request->type, MessageType::kStats);
}

// -- online: a live daemon on the socket ------------------------------------

TEST(ProtocolFuzz, DaemonAnswersGarbageWithStructuredErrors) {
  const std::string socket = test_socket_path("garbage");
  ServerConfig config;
  config.socket_path = socket;
  config.cluster.num_devices = 2;
  ServeSession session(std::move(config));
  std::string error;
  ASSERT_TRUE(session.begin(&error)) << error;

  Pcg32 rng(0xABCD);
  Client client;
  ASSERT_TRUE(client.connect(socket, &error)) << error;
  for (int round = 0; round < 50; ++round) {
    ASSERT_TRUE(client.send_raw(garbage_line(rng), &error)) << error;
    const std::optional<obs::JsonValue> reply = client.read_reply(&error);
    ASSERT_TRUE(reply.has_value()) << error;
    ASSERT_NE(reply->find("ok"), nullptr) << reply->dump();
    EXPECT_FALSE(reply->at("ok").as_bool()) << reply->dump();
    EXPECT_FALSE(reply->at("code").as_string().empty());
  }
  // The connection is still in lockstep: a valid request works.
  const auto stats = client.stats(&error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_TRUE(stats->at("ok").as_bool()) << stats->dump();

  client.close();
  session.server().request_drain();
  EXPECT_EQ(session.join(), 0);
}

TEST(ProtocolFuzz, DaemonSurvivesBitFlippedAndTruncatedFrames) {
  const std::string socket = test_socket_path("flips");
  ServerConfig config;
  config.socket_path = socket;
  config.cluster.num_devices = 2;
  ServeSession session(std::move(config));
  std::string error;
  ASSERT_TRUE(session.begin(&error)) << error;

  Pcg32 rng(0x5EED);
  const std::vector<std::string> frames = valid_frames();
  for (int round = 0; round < 60; ++round) {
    std::string frame = frames[rng.uniform_below(
        static_cast<std::uint32_t>(frames.size()))];
    const std::size_t i =
        rng.uniform_below(static_cast<std::uint32_t>(frame.size() - 1));
    frame[i] = static_cast<char>(static_cast<unsigned char>(frame[i]) ^
                                 (1u << rng.uniform_below(8u)));
    if (frame.back() != '\n') frame += '\n';

    Client client;
    ASSERT_TRUE(client.connect(socket, &error)) << error;
    ASSERT_TRUE(client.send_raw(frame, &error)) << error;
    // Contract: one structured JSON reply per frame, whatever the bytes.
    // (A flip inside the workload payload may still be a valid submit —
    // "ok": true is an acceptable outcome; dying is not.)
    const std::optional<obs::JsonValue> reply = client.read_reply(&error);
    ASSERT_TRUE(reply.has_value()) << error;
    ASSERT_NE(reply->find("ok"), nullptr) << reply->dump();
    client.close();
  }

  // A client that sends half a frame and vanishes must not wedge the
  // daemon.
  for (int round = 0; round < 10; ++round) {
    Client client;
    ASSERT_TRUE(client.connect(socket, &error)) << error;
    const std::string& frame = frames[rng.uniform_below(
        static_cast<std::uint32_t>(frames.size()))];
    ASSERT_TRUE(client.send_raw(
        frame.substr(0, 1 + rng.uniform_below(
                            static_cast<std::uint32_t>(frame.size() - 1))),
        &error))
        << error;
    client.close();
  }

  Client client;
  ASSERT_TRUE(client.connect(socket, &error)) << error;
  const auto stats = client.stats(&error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_TRUE(stats->at("ok").as_bool()) << stats->dump();
  client.close();
  session.server().request_drain();
  EXPECT_EQ(session.join(), 0);
}

TEST(ProtocolFuzz, InterleavedPartialWritesStayPerConnection) {
  const std::string socket = test_socket_path("interleave");
  ServerConfig config;
  config.socket_path = socket;
  config.cluster.num_devices = 2;
  ServeSession session(std::move(config));
  std::string error;
  ASSERT_TRUE(session.begin(&error)) << error;

  // Two connections, each sending its request one byte at a time, turns
  // interleaved. Framing is per-connection, so both must get their own
  // correct reply.
  Client a;
  Client b;
  ASSERT_TRUE(a.connect(socket, &error)) << error;
  ASSERT_TRUE(b.connect(socket, &error)) << error;
  const std::string frame_a =
      encode_frame(make_plain_request(MessageType::kStats));
  const std::string frame_b =
      encode_frame(make_plain_request(MessageType::kMetrics));
  for (std::size_t i = 0; i < std::max(frame_a.size(), frame_b.size()); ++i) {
    if (i < frame_a.size()) {
      ASSERT_TRUE(a.send_raw(frame_a.substr(i, 1), &error)) << error;
    }
    if (i < frame_b.size()) {
      ASSERT_TRUE(b.send_raw(frame_b.substr(i, 1), &error)) << error;
    }
  }
  const auto reply_a = a.read_reply(&error);
  ASSERT_TRUE(reply_a.has_value()) << error;
  EXPECT_TRUE(reply_a->at("ok").as_bool()) << reply_a->dump();
  EXPECT_NE(reply_a->find("stats"), nullptr) << reply_a->dump();
  const auto reply_b = b.read_reply(&error);
  ASSERT_TRUE(reply_b.has_value()) << error;
  EXPECT_TRUE(reply_b->at("ok").as_bool()) << reply_b->dump();
  EXPECT_NE(reply_b->find("metrics"), nullptr) << reply_b->dump();

  a.close();
  b.close();
  session.server().request_drain();
  EXPECT_EQ(session.join(), 0);
}

}  // namespace
}  // namespace micco::service
