#include "common/log.hpp"

#include <gtest/gtest.h>

namespace micco {
namespace {

/// Counts how often it is streamed; proves suppressed lines never format.
struct FormatProbe {
  mutable int* formats;
};

std::ostream& operator<<(std::ostream& os, const FormatProbe& probe) {
  ++*probe.formats;
  return os << "probe";
}

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = log_level(); }
  void TearDown() override { set_log_level(previous_); }

 private:
  LogLevel previous_;
};

TEST_F(LogTest, SuppressedLineSkipsFormattingEntirely) {
  set_log_level(LogLevel::kError);
  int formats = 0;
  log_debug() << "expensive: " << FormatProbe{&formats};
  EXPECT_EQ(formats, 0);
}

TEST_F(LogTest, EnabledLineFormatsOnce) {
  set_log_level(LogLevel::kDebug);
  int formats = 0;
  ::testing::internal::CaptureStderr();
  log_debug() << FormatProbe{&formats};
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(formats, 1);
  EXPECT_NE(err.find("probe"), std::string::npos);
}

TEST_F(LogTest, LevelThresholdIsInclusive) {
  set_log_level(LogLevel::kWarn);
  int warn_formats = 0;
  int info_formats = 0;
  ::testing::internal::CaptureStderr();
  log_warn() << FormatProbe{&warn_formats};
  log_info() << FormatProbe{&info_formats};
  ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(warn_formats, 1);
  EXPECT_EQ(info_formats, 0);
}

TEST_F(LogTest, LinePrefixNamesTheLevel) {
  set_log_level(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  log_info() << "ready";
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[micco:info] ready"), std::string::npos);
}

}  // namespace
}  // namespace micco
