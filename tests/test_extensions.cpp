// Tests for the future-work extensions and ablations: the dmda data-aware
// baseline, multi-node topologies, and pair-ordering policies.
#include <gtest/gtest.h>

#include <set>

#include "core/experiment.hpp"
#include "sched/baselines.hpp"
#include "workload/synthetic.hpp"

namespace micco {
namespace {

TensorDesc make_desc(TensorId id, std::int64_t extent = 64) {
  return TensorDesc{id, 2, extent, 4};
}

ContractionTask make_task(TensorId a, TensorId b, TensorId out,
                          std::int64_t extent = 64) {
  ContractionTask t;
  t.a = make_desc(a, extent);
  t.b = make_desc(b, extent);
  t.out = make_desc(out, extent);
  return t;
}

ClusterConfig cluster_of(int devices) {
  ClusterConfig c;
  c.num_devices = devices;
  c.device_capacity_bytes = 1ull << 30;
  return c;
}

WorkloadStream test_stream(std::uint64_t seed = 5) {
  SyntheticConfig cfg;
  cfg.num_vectors = 8;
  cfg.vector_size = 32;
  cfg.tensor_extent = 128;
  cfg.batch = 4;
  cfg.repeated_rate = 0.75;
  cfg.seed = seed;
  return generate_synthetic(cfg);
}

// ------------------------------------------------------------------ dmda --

TEST(Dmda, PrefersDeviceHoldingOperands) {
  ClusterSimulator sim(cluster_of(2));
  sim.execute(make_task(0, 1, 2), 1);
  sim.barrier();  // equalise timelines: only locality differs now
  DmdaScheduler sched;
  EXPECT_EQ(sched.assign(make_task(0, 1, 3), sim), 1);
}

TEST(Dmda, SpreadsWhenNoLocalityExists) {
  ClusterSimulator sim(cluster_of(4));
  DmdaScheduler sched;
  std::set<DeviceId> used;
  for (TensorId i = 0; i < 16; i += 4) {
    const ContractionTask t = make_task(i, i + 1, i + 2);
    const DeviceId d = sched.assign(t, sim);
    sim.execute(t, d);
    used.insert(d);
  }
  EXPECT_EQ(used.size(), 4u);
}

TEST(Dmda, AbandonsLocalityWhenHolderIsOverloaded) {
  ClusterSimulator sim(cluster_of(2));
  sim.execute(make_task(0, 1, 2), 1);
  // Pile unrelated work on device 1 until re-fetching on device 0 wins.
  for (TensorId i = 10; i < 100; i += 3) {
    sim.execute(make_task(i, i + 1, i + 2, 256), 1);
  }
  DmdaScheduler sched;
  EXPECT_EQ(sched.assign(make_task(0, 1, 200), sim), 0);
}

TEST(Dmda, LandsBetweenGrouteAndMiccoOnReuseHeavyStreams) {
  const WorkloadStream stream = test_stream();
  const auto entries = compare_schedulers(
      stream, cluster_of(4),
      {SchedulerKind::kGroute, SchedulerKind::kDmda,
       SchedulerKind::kMiccoNaive});
  const double groute = entries[0].gflops();
  const double dmda = entries[1].gflops();
  EXPECT_GE(dmda, groute * 0.99);  // data-awareness must not hurt
}

TEST(Dmda, NameAndFactory) {
  EXPECT_EQ(DmdaScheduler{}.name(), "dmda");
  EXPECT_EQ(make_scheduler(SchedulerKind::kDmda)->name(), "dmda");
  EXPECT_STREQ(to_string(SchedulerKind::kDmda), "dmda");
}

// ------------------------------------------------------------- multinode --

TEST(MultiNode, NodeOfRespectsTopology) {
  ClusterConfig cfg = cluster_of(8);
  cfg.devices_per_node = 4;
  ClusterSimulator sim(cfg);
  EXPECT_EQ(sim.node_of(0), 0);
  EXPECT_EQ(sim.node_of(3), 0);
  EXPECT_EQ(sim.node_of(4), 1);
  EXPECT_EQ(sim.node_of(7), 1);
}

TEST(MultiNode, SingleNodeByDefault) {
  ClusterSimulator sim(cluster_of(8));
  EXPECT_EQ(sim.node_of(0), sim.node_of(7));
}

TEST(MultiNode, CrossNodeFetchUsesInternodeLink) {
  ClusterConfig cfg = cluster_of(4);
  cfg.devices_per_node = 2;
  cfg.p2p_enabled = true;
  ClusterSimulator sim(cfg);
  sim.execute(make_task(0, 1, 2), 0);   // replicas on node 0
  sim.execute(make_task(0, 5, 6), 3);   // tensor 0 crosses to node 1
  EXPECT_EQ(sim.metrics().internode_transfers, 1u);
  EXPECT_EQ(sim.metrics().p2p_transfers, 0u);
}

TEST(MultiNode, IntraNodeFetchPreferred) {
  ClusterConfig cfg = cluster_of(4);
  cfg.devices_per_node = 2;
  cfg.p2p_enabled = true;
  ClusterSimulator sim(cfg);
  sim.execute(make_task(0, 1, 2), 0);
  sim.execute(make_task(0, 5, 6), 1);  // same node: fast path
  EXPECT_EQ(sim.metrics().p2p_transfers, 1u);
  EXPECT_EQ(sim.metrics().internode_transfers, 0u);
}

TEST(MultiNode, CrossNodeTrafficCostsMoreTime) {
  const auto run_with_nodes = [](int per_node) {
    ClusterConfig cfg = cluster_of(4);
    cfg.devices_per_node = per_node;
    cfg.p2p_enabled = true;
    ClusterSimulator sim(cfg);
    sim.execute(make_task(0, 1, 2), 0);
    sim.execute(make_task(0, 1, 3), 3);  // fetch both from device 0
    return sim.busy_time(3);
  };
  EXPECT_GT(run_with_nodes(2), run_with_nodes(4));
}

TEST(MultiNode, InternodeSlowerThanP2PFasterThanNothing) {
  CostModel m;
  constexpr std::uint64_t kBytes = 64ull << 20;
  EXPECT_GT(m.internode_time(kBytes), m.p2p_time(kBytes));
  EXPECT_LT(m.internode_time(kBytes), m.h2d_time(kBytes));
}

// ------------------------------------------------------------- ordering --

TEST(PairOrdering, Names) {
  EXPECT_STREQ(to_string(PairOrdering::kAsGiven), "as-given");
  EXPECT_STREQ(to_string(PairOrdering::kReuseTierFirst), "reuse-tier-first");
  EXPECT_STREQ(to_string(PairOrdering::kLargestFirst), "largest-first");
}

TEST(PairOrdering, AllOrderingsConserveWork) {
  const WorkloadStream stream = test_stream(11);
  for (const PairOrdering ordering :
       {PairOrdering::kAsGiven, PairOrdering::kReuseTierFirst,
        PairOrdering::kLargestFirst}) {
    MiccoScheduler sched;
    RunOptions options;
    options.ordering = ordering;
    const RunResult r = run_stream(stream, sched, cluster_of(4), options);
    EXPECT_EQ(r.metrics.total_flops, stream.total_flops())
        << to_string(ordering);
  }
}

TEST(PairOrdering, ReuseTierFirstChangesSchedule) {
  const WorkloadStream stream = test_stream(13);
  MiccoScheduler s1, s2;
  RunOptions as_given;
  RunOptions tier_first;
  tier_first.ordering = PairOrdering::kReuseTierFirst;
  const RunResult a = run_stream(stream, s1, cluster_of(4), as_given);
  const RunResult b = run_stream(stream, s2, cluster_of(4), tier_first);
  // Different visit order must actually reorder something observable.
  EXPECT_NE(a.metrics.makespan_s, b.metrics.makespan_s);
}

TEST(PairOrdering, DefaultOptionsMatchLegacyOverload) {
  const WorkloadStream stream = test_stream(17);
  MiccoScheduler s1, s2;
  const RunResult a = run_stream(stream, s1, cluster_of(4));
  const RunResult b = run_stream(stream, s2, cluster_of(4), RunOptions{});
  EXPECT_DOUBLE_EQ(a.metrics.makespan_s, b.metrics.makespan_s);
}

TEST(RunOptions, TraceAttachesThroughPipeline) {
  const WorkloadStream stream = test_stream(19);
  MiccoScheduler sched;
  TraceRecorder trace;
  RunOptions options;
  options.trace = &trace;
  const RunResult r = run_stream(stream, sched, cluster_of(4), options);
  EXPECT_GT(trace.size(), 0u);
  EXPECT_EQ(trace.summarize(TraceEventKind::kKernel).count,
            static_cast<std::size_t>(stream.vectors.size()) *
                stream.vectors[0].tasks.size());
  EXPECT_GT(r.metrics.total_flops, 0u);
}

}  // namespace
}  // namespace micco
