#include "workload/synthetic.hpp"

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

namespace micco {
namespace {

SyntheticConfig base_config() {
  SyntheticConfig c;
  c.num_vectors = 6;
  c.vector_size = 16;
  c.tensor_extent = 32;
  c.batch = 2;
  c.repeated_rate = 0.5;
  c.seed = 123;
  return c;
}

TEST(Synthetic, ShapeMatchesConfig) {
  const WorkloadStream s = generate_synthetic(base_config());
  EXPECT_EQ(s.vectors.size(), 6u);
  for (const VectorWorkload& v : s.vectors) {
    EXPECT_EQ(v.tasks.size(), 8u);  // vector_size / 2 pairs
    EXPECT_EQ(v.tensor_count(), 16);
    for (const ContractionTask& t : v.tasks) {
      EXPECT_EQ(t.a.extent, 32);
      EXPECT_EQ(t.b.extent, 32);
      EXPECT_EQ(t.a.batch, 2);
      EXPECT_EQ(t.a.rank, 2);
      EXPECT_EQ(t.out.rank, 2);
    }
  }
}

TEST(Synthetic, DeterministicInSeed) {
  const WorkloadStream a = generate_synthetic(base_config());
  const WorkloadStream b = generate_synthetic(base_config());
  ASSERT_EQ(a.vectors.size(), b.vectors.size());
  for (std::size_t v = 0; v < a.vectors.size(); ++v) {
    ASSERT_EQ(a.vectors[v].tasks.size(), b.vectors[v].tasks.size());
    for (std::size_t t = 0; t < a.vectors[v].tasks.size(); ++t) {
      EXPECT_EQ(a.vectors[v].tasks[t].a.id, b.vectors[v].tasks[t].a.id);
      EXPECT_EQ(a.vectors[v].tasks[t].b.id, b.vectors[v].tasks[t].b.id);
    }
  }
}

TEST(Synthetic, DifferentSeedsDiffer) {
  SyntheticConfig c1 = base_config();
  SyntheticConfig c2 = base_config();
  c2.seed = 999;
  const WorkloadStream a = generate_synthetic(c1);
  const WorkloadStream b = generate_synthetic(c2);
  bool any_difference = false;
  for (std::size_t v = 1; v < a.vectors.size() && !any_difference; ++v) {
    for (std::size_t t = 0; t < a.vectors[v].tasks.size(); ++t) {
      if (a.vectors[v].tasks[t].a.id != b.vectors[v].tasks[t].a.id) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(Synthetic, FirstVectorIsAllFresh) {
  SyntheticConfig c = base_config();
  c.repeated_rate = 1.0;
  const WorkloadStream s = generate_synthetic(c);
  std::unordered_set<TensorId> ids;
  for (const ContractionTask& t : s.vectors[0].tasks) {
    ids.insert(t.a.id);
    ids.insert(t.b.id);
  }
  // With no history, all 16 slots are fresh distinct tensors.
  EXPECT_EQ(ids.size(), 16u);
}

TEST(Synthetic, RepeatedRateRespectedInLaterVectors) {
  SyntheticConfig c = base_config();
  c.repeated_rate = 0.5;
  const WorkloadStream s = generate_synthetic(c);

  // Track every tensor seen in earlier vectors; exactly half of each later
  // vector's slots must come from that set.
  std::unordered_set<TensorId> history;
  for (const ContractionTask& t : s.vectors[0].tasks) {
    history.insert(t.a.id);
    history.insert(t.b.id);
  }
  for (std::size_t v = 1; v < s.vectors.size(); ++v) {
    int repeats = 0;
    for (const ContractionTask& t : s.vectors[v].tasks) {
      if (history.contains(t.a.id)) ++repeats;
      if (history.contains(t.b.id)) ++repeats;
    }
    EXPECT_EQ(repeats, 8);  // 50% of 16 slots
    for (const ContractionTask& t : s.vectors[v].tasks) {
      history.insert(t.a.id);
      history.insert(t.b.id);
    }
  }
}

TEST(Synthetic, ZeroRepeatedRateAllFresh) {
  SyntheticConfig c = base_config();
  c.repeated_rate = 0.0;
  const WorkloadStream s = generate_synthetic(c);
  std::unordered_set<TensorId> seen;
  for (const VectorWorkload& v : s.vectors) {
    for (const ContractionTask& t : v.tasks) {
      EXPECT_TRUE(seen.insert(t.a.id).second);
      EXPECT_TRUE(seen.insert(t.b.id).second);
    }
  }
}

TEST(Synthetic, FullRepeatedRateReusesHistoryOnly) {
  SyntheticConfig c = base_config();
  c.repeated_rate = 1.0;
  const WorkloadStream s = generate_synthetic(c);
  std::unordered_set<TensorId> history;
  for (const ContractionTask& t : s.vectors[0].tasks) {
    history.insert(t.a.id);
    history.insert(t.b.id);
  }
  for (std::size_t v = 1; v < s.vectors.size(); ++v) {
    for (const ContractionTask& t : s.vectors[v].tasks) {
      EXPECT_TRUE(history.contains(t.a.id));
      EXPECT_TRUE(history.contains(t.b.id));
    }
  }
}

TEST(Synthetic, OutputIdsNeverCollideWithInputs) {
  const WorkloadStream s = generate_synthetic(base_config());
  std::unordered_set<TensorId> inputs;
  std::unordered_set<TensorId> outputs;
  for (const VectorWorkload& v : s.vectors) {
    for (const ContractionTask& t : v.tasks) {
      inputs.insert(t.a.id);
      inputs.insert(t.b.id);
      EXPECT_TRUE(outputs.insert(t.out.id).second) << "output id reused";
    }
  }
  for (const TensorId out : outputs) {
    EXPECT_FALSE(inputs.contains(out));
  }
}

TEST(Synthetic, GaussianConcentratesRepeats) {
  // Under the Gaussian selection, repeat multiplicity should concentrate on
  // a small hot set: the most-repeated tensor must dominate far more than
  // under Uniform.
  SyntheticConfig uni = base_config();
  uni.num_vectors = 30;
  uni.vector_size = 32;
  uni.repeated_rate = 0.75;
  uni.distribution = DataDistribution::kUniform;
  SyntheticConfig gauss = uni;
  gauss.distribution = DataDistribution::kGaussian;

  const auto max_multiplicity = [](const WorkloadStream& s) {
    std::unordered_map<TensorId, int> counts;
    for (const VectorWorkload& v : s.vectors) {
      for (const ContractionTask& t : v.tasks) {
        ++counts[t.a.id];
        ++counts[t.b.id];
      }
    }
    int best = 0;
    for (const auto& [id, c] : counts) {
      (void)id;
      best = std::max(best, c);
    }
    return best;
  };

  EXPECT_GT(max_multiplicity(generate_synthetic(gauss)),
            2 * max_multiplicity(generate_synthetic(uni)));
}

TEST(Synthetic, StreamMetadataRecorded) {
  SyntheticConfig c = base_config();
  c.distribution = DataDistribution::kGaussian;
  const WorkloadStream s = generate_synthetic(c);
  EXPECT_EQ(s.vector_size, 16);
  EXPECT_EQ(s.tensor_extent, 32);
  EXPECT_EQ(s.batch, 2);
  EXPECT_DOUBLE_EQ(s.repeated_rate, 0.5);
  EXPECT_EQ(s.distribution, DataDistribution::kGaussian);
}

TEST(SyntheticValidate, RejectsBadConfigs) {
  SyntheticConfig c = base_config();
  c.vector_size = 7;  // odd
  EXPECT_DEATH(validate(c), "vector size");

  c = base_config();
  c.repeated_rate = 1.5;
  EXPECT_DEATH(validate(c), "repeated rate");

  c = base_config();
  c.rank = 4;
  EXPECT_DEATH(validate(c), "rank");
}

TEST(Synthetic, Rank3WorkloadsSupported) {
  SyntheticConfig c = base_config();
  c.rank = 3;
  const WorkloadStream s = generate_synthetic(c);
  for (const ContractionTask& t : s.vectors[0].tasks) {
    EXPECT_EQ(t.a.rank, 3);
    EXPECT_EQ(t.b.rank, 3);
    EXPECT_EQ(t.out.rank, 2);  // baryon contraction emits matrices
  }
}

}  // namespace
}  // namespace micco
