#include "workload/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "core/verify.hpp"
#include "redstar/correlator.hpp"
#include "workload/synthetic.hpp"

namespace micco {
namespace {

WorkloadStream sample_stream() {
  SyntheticConfig cfg;
  cfg.num_vectors = 4;
  cfg.vector_size = 8;
  cfg.tensor_extent = 16;
  cfg.batch = 2;
  cfg.repeated_rate = 0.75;
  cfg.distribution = DataDistribution::kGaussian;
  cfg.seed = 9;
  return generate_synthetic(cfg);
}

void expect_streams_equal(const WorkloadStream& a, const WorkloadStream& b) {
  ASSERT_EQ(a.vectors.size(), b.vectors.size());
  for (std::size_t v = 0; v < a.vectors.size(); ++v) {
    ASSERT_EQ(a.vectors[v].tasks.size(), b.vectors[v].tasks.size());
    for (std::size_t t = 0; t < a.vectors[v].tasks.size(); ++t) {
      EXPECT_EQ(a.vectors[v].tasks[t].a, b.vectors[v].tasks[t].a);
      EXPECT_EQ(a.vectors[v].tasks[t].b, b.vectors[v].tasks[t].b);
      EXPECT_EQ(a.vectors[v].tasks[t].out, b.vectors[v].tasks[t].out);
    }
  }
  EXPECT_EQ(a.vector_size, b.vector_size);
  EXPECT_EQ(a.tensor_extent, b.tensor_extent);
  EXPECT_EQ(a.batch, b.batch);
  EXPECT_DOUBLE_EQ(a.repeated_rate, b.repeated_rate);
  EXPECT_EQ(a.distribution, b.distribution);
}

TEST(WorkloadSerialize, RoundTripPreservesEverything) {
  const WorkloadStream original = sample_stream();
  std::stringstream buffer;
  save_stream(original, buffer);
  std::string error;
  const auto loaded = load_stream(buffer, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  expect_streams_equal(original, *loaded);
}

TEST(WorkloadSerialize, RoundTripPreservesStructuralValidity) {
  const WorkloadStream original = sample_stream();
  std::stringstream buffer;
  save_stream(original, buffer);
  const auto loaded = load_stream(buffer);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(validate_stream_structure(*loaded), "");
}

TEST(WorkloadSerialize, RedstarStreamRoundTrips) {
  redstar::CorrelatorSpec spec = redstar::make_a1_rhopi();
  spec.time_slices = 3;
  spec.extent = 8;
  spec.batch = 1;
  const WorkloadStream original = redstar::build_workload(spec).stream;
  std::stringstream buffer;
  save_stream(original, buffer);
  const auto loaded = load_stream(buffer);
  ASSERT_TRUE(loaded.has_value());
  expect_streams_equal(original, *loaded);
  // Numeric digest survives the round trip (same TensorIds -> same data).
  EXPECT_DOUBLE_EQ(execute_numerically(original).digest,
                   execute_numerically(*loaded).digest);
}

TEST(WorkloadSerialize, RejectsGarbage) {
  std::stringstream buffer("hello world");
  std::string error;
  EXPECT_FALSE(load_stream(buffer, &error).has_value());
  EXPECT_NE(error.find("not a micco workload"), std::string::npos);
}

TEST(WorkloadSerialize, RejectsWrongVersion) {
  std::stringstream buffer("micco-workload v9\n");
  std::string error;
  EXPECT_FALSE(load_stream(buffer, &error).has_value());
  EXPECT_NE(error.find("version"), std::string::npos);
}

TEST(WorkloadSerialize, RejectsTruncatedTask) {
  std::stringstream buffer(
      "micco-workload v1\nmeta 8 16 2 0.5 uniform\nvectors 1\nvector 1\n"
      "task 0 2 16 2 1 2 16\n");
  std::string error;
  EXPECT_FALSE(load_stream(buffer, &error).has_value());
  EXPECT_NE(error.find("truncated"), std::string::npos);
}

TEST(WorkloadSerialize, RejectsBadRank) {
  std::stringstream buffer(
      "micco-workload v1\nmeta 8 16 2 0.5 uniform\nvectors 1\nvector 1\n"
      "task 0 5 16 2 1 2 16 2 2 2 16 2\n");
  std::string error;
  EXPECT_FALSE(load_stream(buffer, &error).has_value());
  EXPECT_NE(error.find("invalid tensor"), std::string::npos);
}

TEST(WorkloadSerialize, RejectsMismatchedOperands) {
  std::stringstream buffer(
      "micco-workload v1\nmeta 8 16 2 0.5 uniform\nvectors 1\nvector 1\n"
      "task 0 2 16 2 1 2 32 2 2 2 16 2\n");
  std::string error;
  EXPECT_FALSE(load_stream(buffer, &error).has_value());
  EXPECT_NE(error.find("contractable"), std::string::npos);
}

TEST(WorkloadSerialize, RejectsUnknownDistribution) {
  std::stringstream buffer(
      "micco-workload v1\nmeta 8 16 2 0.5 exponential\nvectors 0\n");
  std::string error;
  EXPECT_FALSE(load_stream(buffer, &error).has_value());
  EXPECT_NE(error.find("distribution"), std::string::npos);
}

TEST(WorkloadSerialize, FileRoundTrip) {
  const WorkloadStream original = sample_stream();
  const std::string path = "/tmp/micco_test_workload.mw";
  save_stream_file(original, path);
  std::string error;
  const auto loaded = load_stream_file(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  expect_streams_equal(original, *loaded);
  std::remove(path.c_str());
}

TEST(WorkloadSerialize, MissingFileReportsError) {
  std::string error;
  EXPECT_FALSE(load_stream_file("/nonexistent/w.mw", &error).has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST(WorkloadSerialize, EmptyStreamRoundTrips) {
  WorkloadStream empty;
  empty.vector_size = 0;
  std::stringstream buffer;
  save_stream(empty, buffer);
  const auto loaded = load_stream(buffer);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->vectors.empty());
}

}  // namespace
}  // namespace micco
