// The durable job journal (service/journal.*): envelope encode/parse round
// trips, writer/reader agreement through a real file, and the two
// corruption sweeps behind the crash-safety contract — truncating the tail
// at *every* byte offset and flipping every byte — where the reader must
// stop cleanly at the first defect and never abort.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "service/journal.hpp"

namespace micco::service {
namespace {

std::string tmp_journal_path(const std::string& tag) {
  const std::string path = "/tmp/micco_journal_" + std::to_string(::getpid()) +
                           "_" + tag + ".ndjson";
  ::unlink(path.c_str());
  return path;
}

JournalRecord admitted_record(std::uint64_t job_id) {
  JournalRecord record;
  record.kind = RecordKind::kAdmitted;
  record.job_id = job_id;
  record.tenant = "alice";
  record.name = "job-" + std::to_string(job_id);
  record.trace_id = "t-abc-" + std::to_string(job_id);
  record.idem = "tok-" + std::to_string(job_id);
  record.workload_text = "micco-workload v1\nvectors 0\n";
  return record;
}

JournalRecord dispatched_record(std::uint64_t job_id) {
  JournalRecord record;
  record.kind = RecordKind::kDispatched;
  record.job_id = job_id;
  return record;
}

JournalRecord finished_record(std::uint64_t job_id) {
  JournalRecord record;
  record.kind = RecordKind::kFinished;
  record.job_id = job_id;
  record.state = "DONE";
  obs::JsonValue result = obs::JsonValue::object();
  result.set("makespan_s", 1.25);
  result.set("completed", true);
  record.result = std::move(result);
  record.has_result = true;
  return record;
}

/// A small three-record journal exercising every kind.
std::string three_record_text() {
  return encode_journal_line(admitted_record(1)) +
         encode_journal_line(dispatched_record(1)) +
         encode_journal_line(finished_record(1));
}

TEST(Journal, Fnv1a64HexIsStableAndSized) {
  // Reference value of the empty-input FNV-1a 64 offset basis.
  EXPECT_EQ(fnv1a64_hex(""), "cbf29ce484222325");
  EXPECT_EQ(fnv1a64_hex("micco").size(), 16u);
  EXPECT_NE(fnv1a64_hex("a"), fnv1a64_hex("b"));
}

TEST(Journal, EncodeParseRoundTripsEveryKind) {
  const JournalRecord admitted = admitted_record(7);
  const auto a = parse_journal_line(
      encode_journal_line(admitted).substr(0, encode_journal_line(admitted)
                                                  .size() - 1));
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->kind, RecordKind::kAdmitted);
  EXPECT_EQ(a->job_id, 7u);
  EXPECT_EQ(a->tenant, admitted.tenant);
  EXPECT_EQ(a->name, admitted.name);
  EXPECT_EQ(a->trace_id, admitted.trace_id);
  EXPECT_EQ(a->idem, admitted.idem);
  EXPECT_EQ(a->workload_text, admitted.workload_text);

  std::string line = encode_journal_line(dispatched_record(7));
  line.pop_back();  // parse takes the line without its '\n'
  const auto d = parse_journal_line(line);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->kind, RecordKind::kDispatched);
  EXPECT_EQ(d->job_id, 7u);

  line = encode_journal_line(finished_record(7));
  line.pop_back();
  const auto f = parse_journal_line(line);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->kind, RecordKind::kFinished);
  EXPECT_EQ(f->state, "DONE");
  ASSERT_TRUE(f->has_result);
  EXPECT_EQ(f->result.at("makespan_s").as_double(), 1.25);
  EXPECT_TRUE(f->result.at("completed").as_bool());
}

TEST(Journal, FinishedFailureCarriesErrorWithoutResult) {
  JournalRecord record;
  record.kind = RecordKind::kFinished;
  record.job_id = 3;
  record.state = "FAILED";
  record.error = "device lost";
  std::string line = encode_journal_line(record);
  line.pop_back();
  const auto parsed = parse_journal_line(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->state, "FAILED");
  EXPECT_EQ(parsed->error, "device lost");
  EXPECT_FALSE(parsed->has_result);
}

TEST(Journal, ResultDigestMismatchRejectsTheRecord) {
  // Tamper with the digest *and* recompute a valid envelope checksum, so
  // the failure exercised here is the end-to-end result digest, not the
  // line CRC.
  std::string line = encode_journal_line(finished_record(9));
  line.pop_back();
  const std::size_t digest_pos = line.find("\"digest\":\"");
  ASSERT_NE(digest_pos, std::string::npos);
  const std::size_t hex_pos = digest_pos + 10;
  line[hex_pos] = line[hex_pos] == '0' ? '1' : '0';
  const std::string rec = line.substr(38, line.size() - 38 - 1);
  line.replace(14, 16, fnv1a64_hex(rec));
  EXPECT_FALSE(parse_journal_line(line).has_value());
}

TEST(Journal, FsyncPolicyNamesRoundTrip) {
  for (const FsyncPolicy policy :
       {FsyncPolicy::kNever, FsyncPolicy::kInterval, FsyncPolicy::kAlways}) {
    const auto parsed = parse_fsync_policy(to_string(policy));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(parse_fsync_policy("sometimes").has_value());
  EXPECT_FALSE(parse_fsync_policy("").has_value());
}

TEST(Journal, WriterAppendsReaderReadsBack) {
  const std::string path = tmp_journal_path("roundtrip");
  JournalConfig config;
  config.path = path;
  config.fsync = FsyncPolicy::kAlways;

  JournalWriter writer;
  std::string error;
  ASSERT_TRUE(writer.open(config, &error)) << error;
  ASSERT_TRUE(writer.is_open());
  ASSERT_TRUE(writer.append(admitted_record(1), &error)) << error;
  ASSERT_TRUE(writer.append(dispatched_record(1), &error)) << error;
  ASSERT_TRUE(writer.append(finished_record(1), &error)) << error;
  EXPECT_EQ(writer.records_appended(), 3u);
  writer.close();
  EXPECT_FALSE(writer.is_open());

  const JournalReadResult read = read_journal_file(path);
  EXPECT_FALSE(read.truncated) << read.note;
  ASSERT_EQ(read.records.size(), 3u);
  EXPECT_EQ(read.records[0].kind, RecordKind::kAdmitted);
  EXPECT_EQ(read.records[1].kind, RecordKind::kDispatched);
  EXPECT_EQ(read.records[2].kind, RecordKind::kFinished);
  EXPECT_EQ(read.records[0].idem, "tok-1");
  ::unlink(path.c_str());
}

TEST(Journal, EmptyPathDisablesJournaling) {
  JournalWriter writer;
  std::string error;
  ASSERT_TRUE(writer.open(JournalConfig{}, &error)) << error;
  EXPECT_FALSE(writer.is_open());
  // Appending to a disabled journal is a reported failure, not a crash.
  EXPECT_FALSE(writer.append(admitted_record(1), &error));
}

TEST(Journal, MissingFileReadsAsCleanEmptyJournal) {
  const JournalReadResult read =
      read_journal_file(tmp_journal_path("missing"));
  EXPECT_TRUE(read.records.empty());
  EXPECT_FALSE(read.truncated);
  EXPECT_EQ(read.bytes_consumed, 0u);
}

TEST(Journal, TailTruncationAtEveryByteOffsetNeverAborts) {
  const std::string text = three_record_text();
  // Line boundaries: prefix sums of line lengths.
  std::vector<std::size_t> boundaries{0};
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') boundaries.push_back(i + 1);
  }
  ASSERT_EQ(boundaries.size(), 4u);

  for (std::size_t cut = 0; cut <= text.size(); ++cut) {
    const JournalReadResult read =
        read_journal_text(std::string_view(text).substr(0, cut));
    // The intact prefix is exactly the complete lines before the cut.
    std::size_t whole_lines = 0;
    while (whole_lines + 1 < boundaries.size() &&
           boundaries[whole_lines + 1] <= cut) {
      ++whole_lines;
    }
    EXPECT_EQ(read.records.size(), whole_lines) << "cut at byte " << cut;
    EXPECT_EQ(read.bytes_consumed, boundaries[whole_lines])
        << "cut at byte " << cut;
    EXPECT_EQ(read.truncated, cut != boundaries[whole_lines])
        << "cut at byte " << cut;
    if (read.truncated) {
      EXPECT_FALSE(read.note.empty());
    }
  }
}

TEST(Journal, BitFlipAtEveryByteStopsAtTheCorruptRecord) {
  const std::string text = three_record_text();
  std::vector<std::size_t> line_of_byte(text.size());
  std::size_t line = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    line_of_byte[i] = line;
    if (text[i] == '\n') ++line;
  }

  for (std::size_t i = 0; i < text.size(); ++i) {
    std::string mutated = text;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x01);
    const JournalReadResult read = read_journal_text(mutated);
    // Everything before the damaged line is returned intact; nothing at or
    // after it is. (Flipping a '\n' merges two lines — both are dropped.)
    EXPECT_EQ(read.records.size(), line_of_byte[i]) << "flip at byte " << i;
    EXPECT_TRUE(read.truncated) << "flip at byte " << i;
    for (std::size_t r = 0; r < read.records.size(); ++r) {
      EXPECT_EQ(read.records[r].job_id, 1u);
    }
  }
}

TEST(Journal, TruncateDropsTornTailForReopen) {
  const std::string path = tmp_journal_path("torn");
  const std::string text = three_record_text();
  {
    std::ofstream out(path, std::ios::binary);
    // Whole journal plus half of a fourth record: a torn append.
    out << text
        << encode_journal_line(admitted_record(2)).substr(0, 25);
  }
  const JournalReadResult read = read_journal_file(path);
  EXPECT_TRUE(read.truncated);
  ASSERT_EQ(read.records.size(), 3u);
  EXPECT_EQ(read.bytes_consumed, text.size());

  std::string error;
  ASSERT_TRUE(truncate_journal_file(path, read.bytes_consumed, &error))
      << error;
  const JournalReadResult again = read_journal_file(path);
  EXPECT_FALSE(again.truncated) << again.note;
  EXPECT_EQ(again.records.size(), 3u);

  // The writer appends on cleanly after the truncation.
  JournalConfig config;
  config.path = path;
  config.fsync = FsyncPolicy::kNever;
  JournalWriter writer;
  ASSERT_TRUE(writer.open(config, &error)) << error;
  ASSERT_TRUE(writer.append(admitted_record(2), &error)) << error;
  writer.close();
  const JournalReadResult grown = read_journal_file(path);
  EXPECT_FALSE(grown.truncated) << grown.note;
  ASSERT_EQ(grown.records.size(), 4u);
  EXPECT_EQ(grown.records[3].job_id, 2u);
  ::unlink(path.c_str());
}

TEST(Journal, IntervalPolicySyncsEveryNAppends) {
  const std::string path = tmp_journal_path("interval");
  JournalConfig config;
  config.path = path;
  config.fsync = FsyncPolicy::kInterval;
  config.fsync_interval = 2;

  obs::Histogram fsync_ms(obs::names::journal_fsync_bounds_ms());
  JournalWriter writer;
  writer.set_telemetry(nullptr, nullptr, &fsync_ms);
  std::string error;
  ASSERT_TRUE(writer.open(config, &error)) << error;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(writer.append(dispatched_record(1), &error)) << error;
  }
  // 5 appends at interval 2 → syncs after #2 and #4.
  EXPECT_EQ(fsync_ms.count(), 2u);
  writer.close();
  ::unlink(path.c_str());
}

}  // namespace
}  // namespace micco::service
