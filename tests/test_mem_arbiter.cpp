#include "mem/arbiter.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace micco {
namespace {

constexpr std::uint64_t kCap = 1000;

TEST(MemoryArbiter, EmptyBooksAdmitWithoutPreeviction) {
  mem::MemoryArbiter arbiter(2, kCap);
  const mem::ArbiterAdmission admission = arbiter.admit("alice", 900);
  EXPECT_EQ(admission.preevicted_bytes, 0u);
  EXPECT_TRUE(admission.evicted_tenants.empty());
}

TEST(MemoryArbiter, RecordRunBooksResidency) {
  mem::MemoryArbiter arbiter(2, kCap);
  arbiter.record_run("alice", {400, 300}, 7);
  EXPECT_EQ(arbiter.tenant_resident_bytes("alice"), 700u);
  EXPECT_EQ(arbiter.tenant_resident_bytes("nobody"), 0u);
  // A tenant's next run replaces its footprint, never accumulates.
  arbiter.record_run("alice", {100, 100}, 9);
  EXPECT_EQ(arbiter.tenant_resident_bytes("alice"), 200u);
}

TEST(MemoryArbiter, OwnFootprintIsNeverPreevicted) {
  mem::MemoryArbiter arbiter(1, kCap);
  arbiter.record_run("alice", {800}, 5);
  const mem::ArbiterAdmission admission = arbiter.admit("alice", 900);
  EXPECT_EQ(admission.preevicted_bytes, 0u);
  EXPECT_EQ(arbiter.tenant_resident_bytes("alice"), 800u);
}

TEST(MemoryArbiter, ColdestCrossTenantFootprintGoesFirst) {
  mem::MemoryArbiter arbiter(1, kCap);
  arbiter.record_run("cold", {400}, 2);   // oldest generation
  arbiter.record_run("warm", {400}, 9);
  // carol needs 500; 800 resident -> 300 must go. The cold tenant pays.
  const mem::ArbiterAdmission admission = arbiter.admit("carol", 500);
  EXPECT_EQ(admission.preevicted_bytes, 300u);
  ASSERT_EQ(admission.evicted_tenants.size(), 1u);
  EXPECT_EQ(admission.evicted_tenants[0], "cold");
  EXPECT_EQ(arbiter.tenant_resident_bytes("cold"), 100u);
  EXPECT_EQ(arbiter.tenant_resident_bytes("warm"), 400u);
}

TEST(MemoryArbiter, EpochTiesBreakByTenantName) {
  mem::MemoryArbiter arbiter(1, kCap);
  arbiter.record_run("bravo", {300}, 4);
  arbiter.record_run("alpha", {300}, 4);  // same generation, earlier name
  const mem::ArbiterAdmission admission = arbiter.admit("carol", 600);
  EXPECT_EQ(admission.preevicted_bytes, 200u);
  ASSERT_FALSE(admission.evicted_tenants.empty());
  EXPECT_EQ(admission.evicted_tenants[0], "alpha");
}

TEST(MemoryArbiter, DrainsEveryColdTenantUnderExtremePressure) {
  mem::MemoryArbiter arbiter(1, kCap);
  arbiter.record_run("a", {300}, 1);
  arbiter.record_run("b", {300}, 2);
  // Demands more than the device: estimate clamps at capacity, all cross-
  // tenant bytes go, and admission still succeeds (never rejects).
  const mem::ArbiterAdmission admission = arbiter.admit("carol", 5000);
  EXPECT_EQ(admission.preevicted_bytes, 600u);
  ASSERT_EQ(admission.evicted_tenants.size(), 2u);
  EXPECT_EQ(admission.evicted_tenants[0], "a");
  EXPECT_EQ(admission.evicted_tenants[1], "b");
  EXPECT_EQ(arbiter.tenant_resident_bytes("a"), 0u);
  EXPECT_EQ(arbiter.tenant_resident_bytes("b"), 0u);
}

TEST(MemoryArbiter, PerDeviceAccountingIsIndependent) {
  mem::MemoryArbiter arbiter(2, kCap);
  // Tenant skewed onto device 0; device 1 has room.
  arbiter.record_run("alice", {900, 100}, 3);
  const mem::ArbiterAdmission admission = arbiter.admit("bob", 500);
  // Only device 0 is over: 900 + 500 > 1000 -> 400 pre-evicted there;
  // device 1 (100 + 500) fits untouched.
  EXPECT_EQ(admission.preevicted_bytes, 400u);
  EXPECT_EQ(arbiter.tenant_resident_bytes("alice"), 600u);
}

TEST(MemoryArbiter, StatsJsonShapeAndCounters) {
  mem::MemoryArbiter arbiter(1, kCap);
  arbiter.record_run("alice", {400}, 6);
  (void)arbiter.admit("bob", 800);
  (void)arbiter.admit("bob", 100);

  const obs::JsonValue stats = arbiter.stats_json();
  EXPECT_EQ(stats.at("admissions").as_int(), 2);
  EXPECT_EQ(static_cast<std::uint64_t>(stats.at("preevicted_bytes").as_int()),
            arbiter.preevicted_bytes_total());
  const obs::JsonValue& alice = stats.at("tenants").at("alice");
  EXPECT_EQ(static_cast<std::uint64_t>(alice.at("resident_bytes").as_int()),
            arbiter.tenant_resident_bytes("alice"));
  EXPECT_EQ(alice.at("epoch").as_int(), 6);
}

TEST(MemoryArbiter, StatsAreDeterministicAcrossInsertionOrders) {
  mem::MemoryArbiter forward(1, kCap);
  forward.record_run("alice", {100}, 1);
  forward.record_run("bob", {200}, 2);
  mem::MemoryArbiter backward(1, kCap);
  backward.record_run("bob", {200}, 2);
  backward.record_run("alice", {100}, 1);
  EXPECT_EQ(forward.stats_json().dump(), backward.stats_json().dump());
}

}  // namespace
}  // namespace micco
